(** Deterministic feature extraction for the DSE surrogate.

    One fixed-width float vector per (candidate design point, kernel):
    the tuning knobs under sweep, the design's recorded optimisation
    flags, and the analysis facts the device models price.  The vector
    is deliberately a *superset* of every device model's inputs — the
    CPU model reads the thread count plus call/cycle/parallelism facts,
    the GPU model reads the blocksize, flags, op mix, traffic and
    register facts, and the FPGA resource model reads the unroll factor,
    precision, hardware op census, locals and BRAM footprints — so two
    candidates with equal vectors (for the same device, which is part of
    the model name, never the vector) are guaranteed to receive equal
    model answers.  That superset property is what makes the raw vector
    usable as an exact memo key ({!key}): replaying a stored outcome for
    an identical vector is bit-identical to re-running the analytic
    model.

    Layout (all values as raw floats; booleans as 0/1):
    {v
      [0]      unroll factor           [1]  blocksize        [2] threads
      [3..8]   flags: single_precision, pinned_memory, shared_mem,
               gpu_intrinsics, zero_copy, reductions_removed
      [9..21]  dynamic facts: calls, outer_trip, cpu_cycles_per_call,
               flops_per_call, sfu_per_call, bytes_accessed_per_call,
               bytes_in_per_call, bytes_out_per_call, inner_read_bytes,
               regs_estimate, locals_count, gather_fraction,
               gathered_footprint
      [22..25] structure: outer_parallel, outer_has_reductions,
               no_alias, flops_per_byte (clamped finite)
      [26..36] ops_per_iter (fadd fmul fdiv sqrt exp_log trig power
               int_ops loads stores cheap_math)
      [37..47] hw_ops_per_iter (same order)
      [48..55] loop-nest shape: n_inner_loops, n_innermost, n_parallel,
               n_reduction, n_fully_unrollable, sum_iters_per_outer,
               max_mean_trip, n_args
    v} *)

let dim = 56

let b v = if v then 1.0 else 0.0

(* Only the informational dims (arithmetic intensity) can be infinite
   (zero-byte kernels); model-input dims are bounded reals far below the
   cap, so clamping cannot merge two distinct model inputs. *)
let finite v =
  if Float.is_nan v then 0.0
  else if v > 1e18 then 1e18
  else if v < -1e18 then -1e18
  else v

let ops_fields (o : Analysis.Opcount.t) =
  [
    o.fadd;
    o.fmul;
    o.fdiv;
    o.sqrt;
    o.exp_log;
    o.trig;
    o.power;
    o.int_ops;
    o.loads;
    o.stores;
    o.cheap_math;
  ]

(** Bytes of indirectly accessed ("gathered") arrays — the same fold the
    GPU and FPGA models price BRAM/shared-memory staging from. *)
let gathered_footprint (f : Analysis.Features.t) =
  List.fold_left
    (fun acc (a : Analysis.Features.arg_feat) ->
      if List.mem a.af_name f.gathered_args then acc + a.af_footprint else acc)
    0 f.args

(** The candidate's feature vector.  [unroll]/[blocksize]/[threads] are
    the swept knob values (pass the design's own value for knobs not
    under sweep). *)
let extract ~(design : Codegen.Design.t) ~unroll ~blocksize ~threads
    (f : Analysis.Features.t) : float array =
  let fi = float_of_int in
  let shape =
    List.fold_left
      (fun (n, inn, par, red, unr, iters, trip)
           (l : Analysis.Features.inner_loop) ->
        ( n + 1,
          (inn + if l.il_innermost then 1 else 0),
          (par + if l.il_parallel then 1 else 0),
          (red + if l.il_has_reduction then 1 else 0),
          (unr + if l.il_fully_unrollable then 1 else 0),
          iters +. l.il_iters_per_outer,
          Float.max trip l.il_mean_trip ))
      (0, 0, 0, 0, 0, 0.0, 0.0)
      f.inner_loops
  in
  let n_loops, n_inner, n_par, n_red, n_unr, sum_iters, max_trip = shape in
  let v =
    Array.of_list
      ([
         fi unroll;
         fi blocksize;
         fi threads;
         b design.single_precision;
         b design.pinned_memory;
         b design.shared_mem;
         b design.gpu_intrinsics;
         b design.zero_copy;
         b design.reductions_removed;
         fi f.calls;
         f.outer_trip;
         f.cpu_cycles_per_call;
         f.flops_per_call;
         f.sfu_per_call;
         f.bytes_accessed_per_call;
         f.bytes_in_per_call;
         f.bytes_out_per_call;
         fi f.inner_read_bytes;
         fi f.regs_estimate;
         fi f.locals_count;
         f.gather_fraction;
         fi (gathered_footprint f);
         b f.outer_parallel;
         b f.outer_has_reductions;
         b f.no_alias;
         finite f.intensity.Analysis.Intensity.flops_per_byte;
       ]
      @ ops_fields f.ops_per_iter
      @ ops_fields f.hw_ops_per_iter
      @ [
          fi n_loops;
          fi n_inner;
          fi n_par;
          fi n_red;
          fi n_unr;
          sum_iters;
          max_trip;
          fi (List.length f.args);
        ])
  in
  assert (Array.length v = dim);
  v

(** Exact memo key: the concatenated IEEE-754 bit patterns of the raw
    vector.  Two candidates share a key iff every feature is
    bit-identical — by the superset property above, iff the device
    models would return identical answers. *)
let key (x : float array) : string =
  let buf = Bytes.create (8 * Array.length x) in
  Array.iteri
    (fun i v -> Bytes.set_int64_le buf (8 * i) (Int64.bits_of_float v))
    x;
  Bytes.unsafe_to_string buf
