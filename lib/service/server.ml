(** The flow daemon: an accept loop over a Unix-domain or TCP socket,
    one handler thread per connection, requests dispatched against the
    shared {!Scheduler} and {!Metrics} registry.

    A connection may carry any number of length-prefixed request frames;
    each gets exactly one response frame.  Malformed frames and unknown
    versions are answered with typed errors rather than dropped, so a
    misbehaving client cannot distinguish "daemon died" from "daemon
    said no".

    [shutdown] is cooperative: the handler answers [Shutting_down],
    then the listener closes and the scheduler drains (queued jobs
    complete) before [serve] returns. *)

module Metrics = Flow_obs.Metrics

type config = {
  workers : int;
  queue_capacity : int;
  store_capacity : int;
  store_shards : int;  (** digest-sharded result store; 1 = single lock *)
  max_connections : int;
      (** concurrent connection cap; further connects are answered with
          a [Server_busy] error and closed (queue-full-style rejection),
          so an accept storm cannot exhaust handler threads *)
}

let default_max_connections () =
  Flow_obs.Env.int ~name:"PSAFLOW_MAX_CONNECTIONS" ~default:64 ~min:1 ()

let default_config () =
  {
    workers = Scheduler.default_workers ();
    queue_capacity = 64;
    store_capacity = 256;
    store_shards = Store.default_shards ();
    max_connections = default_max_connections ();
  }

type t = {
  sched : Scheduler.t;
  metrics : Metrics.t;
  listener : Unix.file_descr;
  stop_wr : Unix.file_descr;  (** self-pipe: one byte = stop accepting *)
  mutable stopping : bool;
  stop_lock : Mutex.t;
  max_connections : int;
  mutable connections : int;  (** live handler threads, under [stop_lock] *)
}

let request_counter = function
  | Protocol.Submit_flow _ -> "requests_submit_flow"
  | Protocol.Submit_batch _ -> "requests_submit_batch"
  | Protocol.Job_status _ -> "requests_job_status"
  | Protocol.Fetch_result _ -> "requests_fetch_result"
  | Protocol.Fetch_batch _ -> "requests_fetch_batch"
  | Protocol.List_jobs -> "requests_list_jobs"
  | Protocol.Metrics -> "requests_metrics"
  | Protocol.Svc_trace _ -> "requests_svc_trace"
  | Protocol.Shutdown -> "requests_shutdown"

(* Fallback request ids for pre-v3 peers that mint none: "srv-N" with a
   process-wide counter, so every job's trace still names a distinct
   request. *)
let srv_request_seq = Atomic.make 0

let request_id_of (s : Protocol.submission) =
  match s.request_id with
  | Some rid -> rid
  | None -> Printf.sprintf "srv-%d" (Atomic.fetch_and_add srv_request_seq 1)

let shard_stats_json t : Json.t =
  Json.List
    (Array.to_list
       (Array.map
          (fun (s : Store.shard_stat) ->
            Json.Obj
              [
                ("length", Json.Int s.st_length);
                ("capacity", Json.Int s.st_capacity);
                ("hits", Json.Int s.st_hits);
                ("misses", Json.Int s.st_misses);
                ("evictions", Json.Int s.st_evictions);
              ])
          (Scheduler.store_shard_stats t.sched)))

let metrics_json t : Json.t =
  let hits, misses = Scheduler.store_stats t.sched in
  let traced, retained, retained_slow = Scheduler.trace_stats t.sched in
  Metrics.to_json
    ~extra:
      [
        ("store_hits", Json.Int hits);
        ("store_misses", Json.Int misses);
        ("store_shards", shard_stats_json t);
        ( "request_traces",
          Json.Obj
            [
              ("executed", Json.Int traced);
              ("sampled", Json.Int retained);
              ("slow", Json.Int retained_slow);
            ] );
        (* the process-wide engine registry: profile-cache hit/miss/
           eviction, pool utilisation, interpreter cycles, DSE candidate
           counts — everything the flow engine records while jobs run *)
        ("engine", Metrics.to_json Flow_obs.Metrics.global);
      ]
    t.metrics

(* Closing the listener from a handler thread does not reliably wake a
   blocked [accept] on Linux; the accept loop therefore selects on a
   self-pipe alongside the listener, and shutdown writes one byte. *)
let begin_shutdown t =
  Mutex.lock t.stop_lock;
  let first = not t.stopping in
  t.stopping <- true;
  Mutex.unlock t.stop_lock;
  if first then
    try ignore (Unix.write t.stop_wr (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

(* One submission, shared by the single and batch paths.  The batch
   variant reports failures per item instead of failing the frame, so a
   poison job in position 3 does not void positions 0-2. *)
let submit_one t (s : Protocol.submission) :
    (int * Protocol.disposition, Protocol.error_kind) result =
  match Flow_exec.resolve s with
  | Error e ->
      Metrics.incr t.metrics "requests_rejected";
      Error e
  | Ok { key; label; run } -> (
      let request_id = request_id_of s in
      match
        Scheduler.submit t.sched ~key ~label ~mode:s.mode ~strategy:s.strategy
          ~request_id
          (run ~request_id:(Some request_id))
      with
      | Ok (job_id, disposition) -> Ok (job_id, disposition)
      | Error `Queue_full ->
          Metrics.incr t.metrics "requests_rejected";
          Error Protocol.Queue_full
      | Error `Shutting_down ->
          Metrics.incr t.metrics "requests_rejected";
          Error (Protocol.Server_error "shutting down"))

let fetch_one t id : Protocol.batch_fetch_item =
  match Scheduler.result t.sched id with
  | None -> Error (Protocol.Unknown_job id)
  | Some (view, Some r) when view.state = Protocol.Done -> Ok (view, Some r)
  | Some (view, _) -> Ok (view, None)

let dispatch t (req : Protocol.request) : Protocol.response =
  match req with
  | Protocol.Submit_flow s -> (
      match submit_one t s with
      | Ok (job_id, disposition) -> Protocol.Submitted { job_id; disposition }
      | Error e -> Protocol.Error e)
  | Protocol.Submit_batch subs ->
      Protocol.Submitted_batch (List.map (submit_one t) subs)
  | Protocol.Job_status id -> (
      match Scheduler.status t.sched id with
      | Some view -> Protocol.Status view
      | None -> Protocol.Error (Protocol.Unknown_job id))
  | Protocol.Fetch_result id -> (
      match Scheduler.result t.sched id with
      | None -> Protocol.Error (Protocol.Unknown_job id)
      | Some (view, Some r) when view.state = Protocol.Done ->
          Protocol.Result (view, r)
      | Some (view, _) ->
          (* not finished (or failed): report state, client decides *)
          Protocol.Status view)
  | Protocol.Fetch_batch ids -> Protocol.Results_batch (List.map (fetch_one t) ids)
  | Protocol.List_jobs -> Protocol.Jobs (Scheduler.list t.sched)
  | Protocol.Metrics -> Protocol.Metrics_data (metrics_json t)
  | Protocol.Svc_trace { slow } ->
      Protocol.Traces (Scheduler.traces ~slow t.sched)
  | Protocol.Shutdown -> Protocol.Shutting_down

let handle_request t (req : Protocol.request) : Protocol.response =
  Metrics.incr t.metrics "requests_total";
  Metrics.incr t.metrics (request_counter req);
  let t0 = Unix.gettimeofday () in
  let resp = dispatch t req in
  (* per-error-kind handling latency ("req_ms_error_<tag>"): how long
     each failure class holds a handler thread — a queue_full rejection
     should be microseconds, a bad_request that parsed megabytes of
     MiniC first is worth seeing *)
  (match resp with
  | Protocol.Error e ->
      Metrics.observe t.metrics
        ("req_ms_error_" ^ Protocol.error_kind_tag e)
        (1000.0 *. (Unix.gettimeofday () -. t0))
  | _ -> ());
  resp

let handle_connection t fd =
  let rec loop () =
    match Protocol.read_request fd with
    | None -> ()
    | Some (Error e) ->
        Metrics.incr t.metrics "requests_total";
        Metrics.incr t.metrics "requests_malformed";
        Protocol.write_response fd (Protocol.Error e);
        loop ()
    | Some (Ok req) ->
        let resp = handle_request t req in
        Protocol.write_response fd resp;
        if req = Protocol.Shutdown then begin_shutdown t else loop ()
  in
  (try loop () with
  | Protocol.Frame_error fe -> (
      Metrics.incr t.metrics "requests_malformed";
      try
        Protocol.write_response fd
          (Protocol.Error
             (Protocol.Bad_request (Protocol.frame_error_message fe)))
      with _ -> ())
  | Unix.Unix_error _ | Sys_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock t.stop_lock;
  t.connections <- t.connections - 1;
  Metrics.set_gauge t.metrics "connections_active" (float_of_int t.connections);
  Mutex.unlock t.stop_lock

(* Over the cap: answer the very first frame with [Server_busy] and
   close.  The client sees a typed error, not a hang or a reset. *)
let reject_connection t fd =
  Metrics.incr t.metrics "connections_rejected";
  (try
     match Protocol.read_request fd with
     | None -> ()
     | Some _ -> Protocol.write_response fd (Protocol.Error Protocol.Server_busy)
   with Protocol.Frame_error _ | Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Claim a connection slot; the handler thread releases it on exit. *)
let try_admit t =
  Mutex.lock t.stop_lock;
  let admitted = t.connections < t.max_connections in
  if admitted then begin
    t.connections <- t.connections + 1;
    Metrics.set_gauge t.metrics "connections_active"
      (float_of_int t.connections)
  end;
  Mutex.unlock t.stop_lock;
  admitted

(** Bind and serve until a [shutdown] request arrives.  Blocks.  The
    Unix socket path is unlinked before bind and after drain. *)
let serve ?(config = default_config ()) (addr : Protocol.addr) =
  (* a client disconnecting mid-response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* observability: real timestamps for spans, and thread-unique trace
     ids (handler/worker systhreads share one domain) *)
  Flow_obs.Trace.set_clock Unix.gettimeofday;
  Flow_obs.Trace.set_tid_provider (fun () ->
      (((Domain.self () : Domain.id) :> int) * 1_000_000)
      + Thread.id (Thread.self ()));
  (match addr with
  | Protocol.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ());
  let domain =
    match addr with
    | Protocol.Unix_path _ -> Unix.PF_UNIX
    | Protocol.Tcp _ -> Unix.PF_INET
  in
  let listener = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Protocol.Tcp _ -> Unix.setsockopt listener Unix.SO_REUSEADDR true
  | Protocol.Unix_path _ -> ());
  Unix.bind listener (Protocol.sockaddr_of_addr addr);
  Unix.listen listener 16;
  let metrics = Metrics.create () in
  let sched =
    Scheduler.create ~workers:config.workers
      ~queue_capacity:config.queue_capacity
      ~store_capacity:config.store_capacity ~store_shards:config.store_shards
      ~metrics ()
  in
  let stop_rd, stop_wr = Unix.pipe () in
  let t =
    {
      sched;
      metrics;
      listener;
      stop_wr;
      stopping = false;
      stop_lock = Mutex.create ();
      max_connections = config.max_connections;
      connections = 0;
    }
  in
  Flow_obs.Log.infof "daemon listening on %s (%d workers)"
    (Protocol.addr_to_string addr) config.workers;
  let rec accept_loop () =
    match Unix.select [ listener; stop_rd ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | readable, _, _ ->
        if List.mem stop_rd readable then ()
        else begin
          (match Unix.accept listener with
          | fd, _ ->
              if try_admit t then begin
                Flow_obs.Log.debugf "daemon: connection accepted";
                ignore (Thread.create (handle_connection t) fd)
              end
              else begin
                Flow_obs.Log.warnf
                  "daemon: connection rejected (limit %d reached)"
                  t.max_connections;
                ignore (Thread.create (reject_connection t) fd)
              end
          | exception Unix.Unix_error _ -> ());
          accept_loop ()
        end
  in
  accept_loop ();
  Flow_obs.Log.infof "daemon shutting down: draining queued jobs";
  begin_shutdown t;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.close stop_rd with Unix.Unix_error _ -> ());
  (try Unix.close stop_wr with Unix.Unix_error _ -> ());
  Scheduler.shutdown t.sched;
  match addr with
  | Protocol.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ()
