(** The flow daemon: an accept loop over a Unix-domain or TCP socket,
    one handler thread per connection, requests dispatched against the
    shared {!Scheduler} and {!Metrics} registry.

    A connection may carry any number of length-prefixed request frames;
    each gets exactly one response frame.  Malformed frames and unknown
    versions are answered with typed errors rather than dropped, so a
    misbehaving client cannot distinguish "daemon died" from "daemon
    said no".

    [shutdown] is cooperative: the handler answers [Shutting_down],
    then the listener closes and the scheduler drains (queued jobs
    complete) before [serve] returns. *)

type config = {
  workers : int;
  queue_capacity : int;
  store_capacity : int;
}

let default_config () =
  {
    workers = Scheduler.default_workers ();
    queue_capacity = 64;
    store_capacity = 256;
  }

type t = {
  sched : Scheduler.t;
  metrics : Metrics.t;
  listener : Unix.file_descr;
  stop_wr : Unix.file_descr;  (** self-pipe: one byte = stop accepting *)
  mutable stopping : bool;
  stop_lock : Mutex.t;
}

let request_counter = function
  | Protocol.Submit_flow _ -> "requests_submit_flow"
  | Protocol.Job_status _ -> "requests_job_status"
  | Protocol.Fetch_result _ -> "requests_fetch_result"
  | Protocol.List_jobs -> "requests_list_jobs"
  | Protocol.Metrics -> "requests_metrics"
  | Protocol.Shutdown -> "requests_shutdown"

let metrics_json t : Json.t =
  let hits, misses = Scheduler.store_stats t.sched in
  Metrics.to_json
    ~extra:
      [
        ("store_hits", Json.Int hits);
        ("store_misses", Json.Int misses);
        (* the process-wide engine registry: profile-cache hit/miss/
           eviction, pool utilisation, interpreter cycles, DSE candidate
           counts — everything the flow engine records while jobs run *)
        ("engine", Metrics.to_json Flow_obs.Metrics.global);
      ]
    t.metrics

(* Closing the listener from a handler thread does not reliably wake a
   blocked [accept] on Linux; the accept loop therefore selects on a
   self-pipe alongside the listener, and shutdown writes one byte. *)
let begin_shutdown t =
  Mutex.lock t.stop_lock;
  let first = not t.stopping in
  t.stopping <- true;
  Mutex.unlock t.stop_lock;
  if first then
    try ignore (Unix.write t.stop_wr (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

let handle_request t (req : Protocol.request) : Protocol.response =
  Metrics.incr t.metrics "requests_total";
  Metrics.incr t.metrics (request_counter req);
  match req with
  | Protocol.Submit_flow s -> (
      match Flow_exec.resolve s with
      | Error e ->
          Metrics.incr t.metrics "requests_rejected";
          Protocol.Error e
      | Ok { key; label; run } -> (
          match
            Scheduler.submit t.sched ~key ~label ~mode:s.mode
              ~strategy:s.strategy run
          with
          | Ok (job_id, disposition) -> Protocol.Submitted { job_id; disposition }
          | Error `Queue_full ->
              Metrics.incr t.metrics "requests_rejected";
              Protocol.Error Protocol.Queue_full
          | Error `Shutting_down ->
              Metrics.incr t.metrics "requests_rejected";
              Protocol.Error (Protocol.Server_error "shutting down")))
  | Protocol.Job_status id -> (
      match Scheduler.status t.sched id with
      | Some view -> Protocol.Status view
      | None -> Protocol.Error (Protocol.Unknown_job id))
  | Protocol.Fetch_result id -> (
      match Scheduler.result t.sched id with
      | None -> Protocol.Error (Protocol.Unknown_job id)
      | Some (view, Some r) when view.state = Protocol.Done ->
          Protocol.Result (view, r)
      | Some (view, _) ->
          (* not finished (or failed): report state, client decides *)
          Protocol.Status view)
  | Protocol.List_jobs -> Protocol.Jobs (Scheduler.list t.sched)
  | Protocol.Metrics -> Protocol.Metrics_data (metrics_json t)
  | Protocol.Shutdown -> Protocol.Shutting_down

let handle_connection t fd =
  let rec loop () =
    match Protocol.read_request fd with
    | None -> ()
    | Some (Error e) ->
        Metrics.incr t.metrics "requests_total";
        Metrics.incr t.metrics "requests_malformed";
        Protocol.write_response fd (Protocol.Error e);
        loop ()
    | Some (Ok req) ->
        let resp = handle_request t req in
        Protocol.write_response fd resp;
        if req = Protocol.Shutdown then begin_shutdown t else loop ()
  in
  (try loop () with
  | Protocol.Frame_error fe -> (
      Metrics.incr t.metrics "requests_malformed";
      try
        Protocol.write_response fd
          (Protocol.Error
             (Protocol.Bad_request (Protocol.frame_error_message fe)))
      with _ -> ())
  | Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(** Bind and serve until a [shutdown] request arrives.  Blocks.  The
    Unix socket path is unlinked before bind and after drain. *)
let serve ?(config = default_config ()) (addr : Protocol.addr) =
  (* a client disconnecting mid-response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* observability: real timestamps for spans, and thread-unique trace
     ids (handler/worker systhreads share one domain) *)
  Flow_obs.Trace.set_clock Unix.gettimeofday;
  Flow_obs.Trace.set_tid_provider (fun () ->
      (((Domain.self () : Domain.id) :> int) * 1_000_000)
      + Thread.id (Thread.self ()));
  (match addr with
  | Protocol.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ());
  let domain =
    match addr with
    | Protocol.Unix_path _ -> Unix.PF_UNIX
    | Protocol.Tcp _ -> Unix.PF_INET
  in
  let listener = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Protocol.Tcp _ -> Unix.setsockopt listener Unix.SO_REUSEADDR true
  | Protocol.Unix_path _ -> ());
  Unix.bind listener (Protocol.sockaddr_of_addr addr);
  Unix.listen listener 16;
  let metrics = Metrics.create () in
  let sched =
    Scheduler.create ~workers:config.workers
      ~queue_capacity:config.queue_capacity
      ~store_capacity:config.store_capacity ~metrics ()
  in
  let stop_rd, stop_wr = Unix.pipe () in
  let t =
    {
      sched;
      metrics;
      listener;
      stop_wr;
      stopping = false;
      stop_lock = Mutex.create ();
    }
  in
  Flow_obs.Log.infof "daemon listening on %s (%d workers)"
    (Protocol.addr_to_string addr) config.workers;
  let rec accept_loop () =
    match Unix.select [ listener; stop_rd ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | readable, _, _ ->
        if List.mem stop_rd readable then ()
        else begin
          (match Unix.accept listener with
          | fd, _ ->
              Flow_obs.Log.debugf "daemon: connection accepted";
              ignore (Thread.create (handle_connection t) fd)
          | exception Unix.Unix_error _ -> ());
          accept_loop ()
        end
  in
  accept_loop ();
  Flow_obs.Log.infof "daemon shutting down: draining queued jobs";
  begin_shutdown t;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.close stop_rd with Unix.Unix_error _ -> ());
  (try Unix.close stop_wr with Unix.Unix_error _ -> ());
  Scheduler.shutdown t.sched;
  match addr with
  | Protocol.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ()
