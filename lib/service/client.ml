(** Blocking client for the flow daemon: connect, exchange one frame per
    request, poll jobs to completion.  Used by the [psaflow] service
    subcommands and the end-to-end tests. *)

type conn = { fd : Unix.file_descr }

exception Client_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Client_error m)) fmt

let connect (addr : Protocol.addr) : conn =
  let domain =
    match addr with
    | Protocol.Unix_path _ -> Unix.PF_UNIX
    | Protocol.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Protocol.sockaddr_of_addr addr)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "cannot connect to %s: %s"
       (Protocol.addr_to_string addr)
       (Unix.error_message e));
  { fd }

let close (c : conn) = try Unix.close c.fd with Unix.Unix_error _ -> ()

let with_conn addr f =
  let c = connect addr in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)

(** One request/response exchange on an open connection. *)
let request (c : conn) (req : Protocol.request) : Protocol.response =
  Protocol.write_request c.fd req;
  match Protocol.read_response c.fd with
  | None -> fail "server closed the connection"
  | Some (Error e) -> fail "cannot decode response: %s" (Protocol.error_message e)
  | Some (Ok resp) -> resp

(** One-shot exchange on a fresh connection. *)
let rpc addr req = with_conn addr (fun c -> request c req)

(** Poll [job_id] until it is done (returning its result), failed, or
    [timeout_s] elapses. *)
let wait_result ?(poll_interval_s = 0.05) ?(timeout_s = 300.0) addr job_id :
    (Protocol.job_view * Protocol.job_result, string) result =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    match rpc addr (Protocol.Fetch_result job_id) with
    | Protocol.Result (view, r) -> Ok (view, r)
    | Protocol.Status { state = Protocol.Failed msg; _ } ->
        Error (Printf.sprintf "job #%d failed: %s" job_id msg)
    | Protocol.Status _ ->
        if Unix.gettimeofday () > deadline then
          Error (Printf.sprintf "timed out waiting for job #%d" job_id)
        else (
          Thread.delay poll_interval_s;
          poll ())
    | Protocol.Error e -> Error (Protocol.error_message e)
    | _ -> Error "unexpected response to fetch_result"
  in
  poll ()

(** Submit and block until the result is available (fresh execution or
    store hit alike). *)
let submit_and_wait ?poll_interval_s ?timeout_s addr submission :
    ( int * [ `Fresh | `Coalesced | `Cached ] * Protocol.job_result,
      string )
    result =
  match rpc addr (Protocol.Submit_flow submission) with
  | Protocol.Submitted { job_id; disposition } -> (
      match wait_result ?poll_interval_s ?timeout_s addr job_id with
      | Ok (_, r) -> Ok (job_id, disposition, r)
      | Error e -> Error e)
  | Protocol.Error e -> Error (Protocol.error_message e)
  | _ -> Error "unexpected response to submit_flow"
