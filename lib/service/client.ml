(** Blocking client for the flow daemon: connect, exchange one frame per
    request, poll jobs to completion.  Used by the [psaflow] service
    subcommands, the load harness and the end-to-end tests.

    Timeouts: [connect ~timeout_ms] (or [PSAFLOW_CLIENT_TIMEOUT_MS])
    bounds both the connect handshake and every subsequent receive.  An
    expired timeout raises {!Protocol_failure} with
    [Protocol.Timeout _] — a typed protocol-level error, not a bare
    string — so callers can distinguish "slow daemon" from "daemon said
    no".  Unset means the historical fully-blocking behaviour. *)

type conn = { fd : Unix.file_descr }

exception Client_error of string

(** A typed protocol error surfaced client-side: [Timeout] when a
    configured deadline expires, [Server_busy] relayed from a daemon at
    its connection cap, etc. *)
exception Protocol_failure of Protocol.error_kind

let fail fmt = Printf.ksprintf (fun m -> raise (Client_error m)) fmt
let timeout what = raise (Protocol_failure (Protocol.Timeout what))

let default_timeout_ms () =
  Flow_obs.Env.int_opt ~name:"PSAFLOW_CLIENT_TIMEOUT_MS" ~min:1 ()

(* Bounded connect: non-blocking connect, select for writability, then
   SO_ERROR tells us whether the handshake actually succeeded. *)
let connect_deadline fd sockaddr ms =
  Unix.set_nonblock fd;
  (match Unix.connect fd sockaddr with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
      match Unix.select [] [ fd ] [] (float_of_int ms /. 1000.0) with
      | [], [], [] -> timeout (Printf.sprintf "connect after %dms" ms)
      | _ -> (
          match Unix.getsockopt_error fd with
          | None -> ()
          | Some e -> raise (Unix.Unix_error (e, "connect", "")))));
  Unix.clear_nonblock fd

let connect ?timeout_ms (addr : Protocol.addr) : conn =
  let timeout_ms =
    match timeout_ms with Some _ as t -> t | None -> default_timeout_ms ()
  in
  let domain =
    match addr with
    | Protocol.Unix_path _ -> Unix.PF_UNIX
    | Protocol.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     match timeout_ms with
     | None -> Unix.connect fd (Protocol.sockaddr_of_addr addr)
     | Some ms ->
         connect_deadline fd (Protocol.sockaddr_of_addr addr) ms;
         (* every receive from here on shares the same bound *)
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO (float_of_int ms /. 1000.0)
   with
  | Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      fail "cannot connect to %s: %s"
        (Protocol.addr_to_string addr)
        (Unix.error_message e)
  | Protocol_failure _ as pf ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise pf);
  { fd }

let close (c : conn) = try Unix.close c.fd with Unix.Unix_error _ -> ()

let with_conn ?timeout_ms addr f =
  let c = connect ?timeout_ms addr in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)

(** One request/response exchange on an open connection. *)
let request (c : conn) (req : Protocol.request) : Protocol.response =
  Protocol.write_request c.fd req;
  match Protocol.read_response c.fd with
  | None -> fail "server closed the connection"
  | Some (Error e) -> fail "cannot decode response: %s" (Protocol.error_message e)
  | Some (Ok resp) -> resp
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* SO_RCVTIMEO expired mid-read *)
      timeout "receive"

(** One-shot exchange on a fresh connection. *)
let rpc ?timeout_ms addr req = with_conn ?timeout_ms addr (fun c -> request c req)

(* ------------------------------------------------------------------ *)
(* Request ids (protocol v3)                                           *)
(* ------------------------------------------------------------------ *)

(* "c-<pid hex><start-millis hex>-<n>": unique across this process and
   overwhelmingly unlikely to collide across concurrent clients of one
   daemon; no randomness, so a replayed workload mints a reproducible
   sequence. *)
let mint_seq = Atomic.make 0

let mint_prefix =
  lazy
    (Printf.sprintf "c-%04x%04x"
       (Unix.getpid () land 0xffff)
       (int_of_float (Unix.gettimeofday () *. 1000.0) land 0xffff))

(** A fresh client-minted request id. *)
let mint_request_id () =
  Printf.sprintf "%s-%d" (Lazy.force mint_prefix)
    (Atomic.fetch_and_add mint_seq 1)

(* A submission with a request id: the caller's own if present, else a
   freshly minted one. *)
let with_request_id (s : Protocol.submission) =
  match s.request_id with
  | Some _ -> s
  | None -> { s with request_id = Some (mint_request_id ()) }

(** Submit one job on an open connection, minting a request id when the
    submission carries none.  Returns the id actually sent (it names
    the job's trace in [svc-trace]) alongside the typed outcome. *)
let submit (c : conn) (s : Protocol.submission) :
    string * (int * Protocol.disposition, Protocol.error_kind) result =
  let s = with_request_id s in
  let rid = Option.get s.request_id in
  match request c (Protocol.Submit_flow s) with
  | Protocol.Submitted { job_id; disposition } -> (rid, Ok (job_id, disposition))
  | Protocol.Error e -> (rid, Error e)
  | _ -> fail "unexpected response to submit_flow"

(** Submit a whole batch in one frame (protocol v2; since v3 every item
    without a request id gets a client-minted one).  Per-item results
    in submission order. *)
let submit_batch (c : conn) (subs : Protocol.submission list) :
    Protocol.batch_submit_item list =
  let subs = List.map with_request_id subs in
  match request c (Protocol.Submit_batch subs) with
  | Protocol.Submitted_batch items -> items
  | Protocol.Error e -> raise (Protocol_failure e)
  | _ -> fail "unexpected response to submit_batch"

(** Fetch many results in one frame (protocol v2). *)
let fetch_batch (c : conn) (ids : int list) : Protocol.batch_fetch_item list =
  match request c (Protocol.Fetch_batch ids) with
  | Protocol.Results_batch items -> items
  | Protocol.Error e -> raise (Protocol_failure e)
  | _ -> fail "unexpected response to fetch_batch"

(** Retained request traces from the daemon (protocol v3): the sampled
    ring, or the slow-exemplar ring with [~slow:true]. *)
let traces ?timeout_ms ?(slow = false) addr : Json.t =
  match rpc ?timeout_ms addr (Protocol.Svc_trace { slow }) with
  | Protocol.Traces t -> t
  | Protocol.Error e -> raise (Protocol_failure e)
  | _ -> fail "unexpected response to svc_trace"

(** Poll [job_id] until it is done (returning its result), failed, or
    [timeout_s] elapses. *)
let wait_result ?(poll_interval_s = 0.05) ?(timeout_s = 300.0) addr job_id :
    (Protocol.job_view * Protocol.job_result, string) result =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    match rpc addr (Protocol.Fetch_result job_id) with
    | Protocol.Result (view, r) -> Ok (view, r)
    | Protocol.Status { state = Protocol.Failed msg; _ } ->
        Error (Printf.sprintf "job #%d failed: %s" job_id msg)
    | Protocol.Status _ ->
        if Unix.gettimeofday () > deadline then
          Error (Printf.sprintf "timed out waiting for job #%d" job_id)
        else (
          Thread.delay poll_interval_s;
          poll ())
    | Protocol.Error e -> Error (Protocol.error_message e)
    | _ -> Error "unexpected response to fetch_result"
  in
  poll ()

(** Submit and block until the result is available (fresh execution or
    store hit alike). *)
let submit_and_wait ?poll_interval_s ?timeout_s addr submission :
    ( int * [ `Fresh | `Coalesced | `Cached ] * Protocol.job_result,
      string )
    result =
  match rpc addr (Protocol.Submit_flow (with_request_id submission)) with
  | Protocol.Submitted { job_id; disposition } -> (
      match wait_result ?poll_interval_s ?timeout_s addr job_id with
      | Ok (_, r) -> Ok (job_id, disposition, r)
      | Error e -> Error e)
  | Protocol.Error e -> Error (Protocol.error_message e)
  | _ -> Error "unexpected response to submit_flow"
