(** Service metrics — a thin veneer over the process-wide
    {!Flow_obs.Metrics} registry.

    The registry itself (counters, gauges, windowed histograms with
    nearest-rank percentiles) now lives in [lib/obs] so the flow engine,
    the DSE sweeps and the interpreter can record into the same
    process-wide instance the daemon serves; this module re-exports it
    and adds the {!Json} serialisation the [metrics] protocol request
    needs. *)

include Flow_obs.Metrics

let summary_json (s : Flow_obs.Metrics.summary) : Json.t =
  let open Json in
  if s.s_count = 0 then Obj [ ("count", Int 0) ]
  else
    Obj
      [
        ("count", Int s.s_count);
        ("sum", Float s.s_sum);
        ("mean", Float s.s_mean);
        ("min", Float s.s_min);
        ("max", Float s.s_max);
        ("p50", Float s.s_p50);
        ("p90", Float s.s_p90);
        ("p99", Float s.s_p99);
      ]

(** One object with a field per metric, in registration order.  Extra
    [(name, value)] pairs can be appended by the caller (the server adds
    store/scheduler snapshots this registry does not own). *)
let to_json ?(extra = []) t : Json.t =
  let fields =
    List.map
      (fun (name, snap) ->
        let v =
          match snap with
          | Flow_obs.Metrics.Counter n -> Json.Int n
          | Flow_obs.Metrics.Gauge g -> Json.Float g
          | Flow_obs.Metrics.Histogram s -> summary_json s
        in
        (name, v))
      (snapshot t)
  in
  Json.Obj (fields @ extra)
