(** Service metrics registry: named counters, gauges and histograms,
    serialized through {!Json} for the [metrics] protocol request.

    Histograms keep full-precision summary statistics (count/sum/min/max)
    plus a bounded ring of recent observations from which percentiles are
    computed (nearest-rank over the retained window).  All operations are
    mutex-guarded; recording is cheap enough for per-request use. *)

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  window : float array;  (** ring buffer of recent observations *)
  mutable filled : int;  (** number of valid cells in [window] *)
  mutable next : int;  (** ring write cursor *)
}

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of histogram

type t = {
  lock : Mutex.t;
  table : (string, metric) Hashtbl.t;
  mutable order : string list;  (** registration order, reversed *)
}

let window_size = 1024

let create () = { lock = Mutex.create (); table = Hashtbl.create 32; order = [] }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let get_or_register t name make =
  match Hashtbl.find_opt t.table name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add t.table name m;
      t.order <- name :: t.order;
      m

let incr ?(by = 1) t name =
  with_lock t (fun () ->
      match get_or_register t name (fun () -> Counter (ref 0)) with
      | Counter r -> r := !r + by
      | _ -> invalid_arg (name ^ " is not a counter"))

let set_gauge t name v =
  with_lock t (fun () ->
      match get_or_register t name (fun () -> Gauge (ref 0.0)) with
      | Gauge r -> r := v
      | _ -> invalid_arg (name ^ " is not a gauge"))

let observe t name v =
  with_lock t (fun () ->
      match
        get_or_register t name (fun () ->
            Histogram
              {
                count = 0;
                sum = 0.0;
                min_v = infinity;
                max_v = neg_infinity;
                window = Array.make window_size 0.0;
                filled = 0;
                next = 0;
              })
      with
      | Histogram h ->
          h.count <- h.count + 1;
          h.sum <- h.sum +. v;
          if v < h.min_v then h.min_v <- v;
          if v > h.max_v then h.max_v <- v;
          h.window.(h.next) <- v;
          h.next <- (h.next + 1) mod window_size;
          if h.filled < window_size then h.filled <- h.filled + 1
      | _ -> invalid_arg (name ^ " is not a histogram"))

let counter_value t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (Counter r) -> !r
      | _ -> 0)

(* Nearest-rank percentile over the retained window. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let histogram_json (h : histogram) =
  let open Json in
  if h.count = 0 then
    Obj [ ("count", Int 0) ]
  else
    let sorted = Array.sub h.window 0 h.filled in
    Array.sort compare sorted;
    Obj
      [
        ("count", Int h.count);
        ("sum", Float h.sum);
        ("mean", Float (h.sum /. float_of_int h.count));
        ("min", Float h.min_v);
        ("max", Float h.max_v);
        ("p50", Float (percentile sorted 50.0));
        ("p90", Float (percentile sorted 90.0));
        ("p99", Float (percentile sorted 99.0));
      ]

(** One object with a field per metric, in registration order.  Extra
    [(name, value)] pairs can be appended by the caller (the server adds
    store/scheduler snapshots this registry does not own). *)
let to_json ?(extra = []) t : Json.t =
  with_lock t (fun () ->
      let fields =
        List.rev_map
          (fun name ->
            let v =
              match Hashtbl.find t.table name with
              | Counter r -> Json.Int !r
              | Gauge r -> Json.Float !r
              | Histogram h -> histogram_json h
            in
            (name, v))
          t.order
      in
      Json.Obj (fields @ extra))
