(** Bridge between the service protocol and the flow engine: resolves a
    {!Protocol.submission} into a content-address, a display label and a
    thunk running [Psa.Std_flow] — with MiniC/benchmark problems mapped
    to typed protocol errors at submit time, before anything enqueues.

    Also owns the canonical textual report renderer so the daemon's
    [fetch_result] payload is byte-identical to what the [psaflow run]
    CLI prints for the same flow. *)

type resolved = {
  key : string;  (** {!Store} content address of the execution *)
  label : string;  (** benchmark id, or ["inline"] *)
  run : request_id:string option -> unit -> Protocol.job_result;
      (** executes the flow under a root span carrying [request_id], so
          a request trace names its originating request end-to-end; the
          id never enters [key], so identical work still coalesces *)
}

(* ------------------------------------------------------------------ *)
(* Report rendering (shared with bin/psaflow.ml)                       *)
(* ------------------------------------------------------------------ *)

(** Exactly the bytes [psaflow run] prints after its header line. *)
let render_report (results : Devices.Simulate.result list) : string =
  let table = Format.asprintf "@.%a" Psa.Report.pp_results results in
  let best =
    match Psa.Report.best results with
    | Some b -> Format.asprintf "@.best: %s (%.1fx)@." b.design.name b.speedup
    | None -> Format.asprintf "@.no feasible design@."
  in
  table ^ best

let attr_json (v : Flow_obs.Attr.value) : Json.t =
  match v with
  | Flow_obs.Attr.Bool b -> Json.Bool b
  | Flow_obs.Attr.Int i -> Json.Int i
  | Flow_obs.Attr.Float f ->
      if Float.is_finite f then Json.Float f
      else Json.String (Flow_obs.Attr.to_display v)
  | Flow_obs.Attr.String s -> Json.String s

let decision_json (d : Flow_obs.Provenance.decision) : Json.t =
  Json.Obj
    ([
       ("branch", Json.String d.branch);
       ("strategy", Json.String d.strategy);
       ("selected", Json.List (List.map (fun p -> Json.String p) d.selected));
     ]
    @ (match d.reason with
      | Some r -> [ ("reason", Json.String r) ]
      | None -> [])
    @ [
        ( "evidence",
          Json.Obj (List.map (fun (k, v) -> (k, attr_json v)) d.evidence) );
      ])

(** The decision provenance of an outcome, as served in the [explain]
    field of job results ([psaflow explain] renders the same records). *)
let decisions_json (outcome : Psa.Std_flow.outcome) : Json.t =
  Json.List
    (List.map decision_json (Psa.Context.collect_decisions outcome.contexts))

let result_json (r : Devices.Simulate.result) : Json.t =
  Json.Obj
    [
      ("name", Json.String r.design.name);
      ( "device",
        Json.String (Devices.Spec.name (Devices.Spec.find r.design.device_id)) );
      ("target", Json.String (Codegen.Design.target_framework r.design.target));
      ("seconds", Json.Float r.seconds);
      ("speedup", Json.Float r.speedup);
      ("feasible", Json.Bool r.feasible);
      ("synthesizable", Json.Bool r.design.synthesizable);
    ]

let outcome_json ~label (s : Protocol.submission)
    (outcome : Psa.Std_flow.outcome) : Json.t =
  Json.Obj
    [
      ("label", Json.String label);
      ("mode", Json.String (Protocol.mode_to_string s.mode));
      ("strategy", Json.String (Protocol.strategy_to_string s.strategy));
      ("designs", Json.List (List.map result_json outcome.results));
      ( "best",
        match Psa.Report.best outcome.results with
        | Some b -> Json.String b.design.name
        | None -> Json.Null );
      ("log", Json.List (List.map (fun l -> Json.String l) outcome.log));
      ("explain", decisions_json outcome);
    ]

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let objective_of_strategy = function
  | Protocol.Model_perf -> Some Psa.Strategy.Performance
  | Protocol.Model_cost -> Some Psa.Strategy.Monetary_cost
  | Protocol.Model_energy -> Some Psa.Strategy.Energy
  | Protocol.Fig3 -> None

let run_outcome (s : Protocol.submission) (ctx : Psa.Context.t) =
  match (s.mode, objective_of_strategy s.strategy) with
  | Protocol.Uninformed, _ ->
      (* uninformed mode takes every path; the strategy never fires *)
      Psa.Std_flow.run_uninformed ~x_threshold:s.x_threshold ctx
  | Protocol.Informed, None ->
      Psa.Std_flow.run_informed ~x_threshold:s.x_threshold ?budget:s.budget ctx
  | Protocol.Informed, Some objective ->
      Psa.Std_flow.run_flow
        (Psa.Std_flow.flow ~select_a:(Psa.Strategy.model_based ~objective) ())
        { ctx with x_threshold = s.x_threshold; budget = s.budget }

(* The span tracer is one process-wide instance; traced jobs therefore
   serialize on this mutex so each exported trace covers exactly one
   job.  Untraced jobs are unaffected (they run concurrently and record
   nothing while the tracer is idle; a job running concurrently with a
   traced one contributes spans distinguished by thread id). *)
let trace_mutex = Mutex.create ()

(** Resolve a submission.  Benchmark lookup and inline MiniC
    parsing/typechecking happen here so the errors surface immediately
    as typed responses; the returned [run] thunk only re-executes work
    already known to succeed up to flow level. *)
let resolve (s : Protocol.submission) : (resolved, Protocol.error_kind) result =
  let make ~label ~source ~workload (mk_ctx : unit -> Psa.Context.t) =
    let workload = if s.trace then workload ^ ";trace" else workload in
    let key =
      Store.key ~source
        ~mode:(Protocol.mode_to_string s.mode)
        ~strategy:(Protocol.strategy_to_string s.strategy)
        ~x_threshold:s.x_threshold ~budget:s.budget ~workload
    in
    let root_args request_id =
      match request_id with
      | Some r -> [ ("request_id", Flow_obs.Attr.String r) ]
      | None -> []
    in
    let plain_run ~request_id () =
      let outcome =
        Flow_obs.Trace.with_span ~cat:"service" ("job " ^ label)
          ~args:(root_args request_id) (fun () -> run_outcome s (mk_ctx ()))
      in
      {
        Protocol.report = render_report outcome.results;
        data = outcome_json ~label s outcome;
      }
    in
    (* The traced path embeds the exported global trace in the job
       result, whose bytes are identity-checked against direct
       re-execution — so the request id must NOT appear in its spans
       (the request-trace record carries the id instead). *)
    let traced_run ~request_id:_ () =
      Mutex.lock trace_mutex;
      Fun.protect ~finally:(fun () ->
          Flow_obs.Trace.stop ();
          Mutex.unlock trace_mutex)
      @@ fun () ->
      Flow_obs.Trace.start ();
      let outcome =
        Flow_obs.Trace.with_span ~cat:"service" ("job " ^ label) (fun () ->
            run_outcome s (mk_ctx ()))
      in
      Flow_obs.Trace.stop ();
      let trace = Json.parse (Flow_obs.Trace.export ~normalize:true ()) in
      let data =
        match outcome_json ~label s outcome with
        | Json.Obj fields -> Json.Obj (fields @ [ ("trace", trace) ])
        | j -> j
      in
      { Protocol.report = render_report outcome.results; data }
    in
    { key; label; run = (if s.trace then traced_run else plain_run) }
  in
  match s.source with
  | Protocol.Bench id -> (
      match Benchmarks.Registry.find id with
      | app ->
          Ok
            (make ~label:id
               ~source:(app.source ~n:app.profile_n)
               ~workload:
                 (Printf.sprintf "bench;profile=%d;secondary=%d;eval=%d"
                    app.profile_n app.secondary_n app.eval_n)
               (fun () ->
                 Benchmarks.Bench_app.context ~x_threshold:s.x_threshold
                   ?budget:s.budget app))
      | exception Invalid_argument _ -> Error (Protocol.Unknown_benchmark id))
  | Protocol.Inline src -> (
      (* validation and context construction share one memoized parse:
         variant submissions of the same source observe the same AST
         objects (and statement ids), which is what lets every
         downstream stage cache hit across requests *)
      match Psa.Stage_memo.parse src with
      | exception Minic.Lexer.Lex_error (m, loc) ->
          Error
            (Protocol.Minic_parse_error
               (Format.asprintf "%s at %a" m Minic.Loc.pp_short loc))
      | exception Minic.Parser.Parse_error (m, loc) ->
          Error
            (Protocol.Minic_parse_error
               (Format.asprintf "%s at %a" m Minic.Loc.pp_short loc))
      | program -> (
          match Minic.Typecheck.check_program program with
          | exception Minic.Typecheck.Type_error (m, loc) ->
              Error
                (Protocol.Minic_type_error
                   (Format.asprintf "%s at %a" m Minic.Loc.pp_short loc))
          | () ->
              Ok
                (make ~label:"inline" ~source:src ~workload:"inline"
                   (fun () ->
                     Psa.Context.make ~benchmark:"inline"
                       ~x_threshold:s.x_threshold ?budget:s.budget
                       (Psa.Stage_memo.parse src)))))
