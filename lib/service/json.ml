(** The wire-protocol JSON type — a re-export of {!Flow_obs.Json}, the
    single JSON implementation in the process.  [Flow_service.Json.t]
    and [Flow_obs.Json.t] are the same type, so values flow freely
    between the protocol layer and the metrics/telemetry renderers. *)

include Flow_obs.Json
