(** Always-on request-trace capture for the daemon.

    Every fresh (actually executed) job runs inside a
    {!Flow_obs.Trace} request recording, so its complete span tree —
    the scheduler lifecycle instants, the flow-exec root span carrying
    the request id, and every task/analysis/DSE span the engine emits —
    is captured without enabling the global tracer.  The recording is
    then {e retained} into one of two bounded rings:

    - the {b sampled} ring keeps every [sample_every]-th execution
      (deterministic: the 1st, the [1+N]th, ... by executed-job
      sequence, so the very first job of a fresh daemon is always
      retained and a given workload always samples the same jobs);
    - the {b slow} ring keeps every execution whose wall clock meets
      [slow_ms], regardless of sampling — the exemplars you want when
      p99 moves.

    Cached and coalesced submissions never execute, so they cost
    nothing here; the recording overhead on fresh jobs is one span
    buffer append per instrumented operation.  Both rings are served to
    clients by the v3 [svc_trace] protocol request. *)

module Trace = Flow_obs.Trace

(** Sampling rate knob: retain one in [PSAFLOW_TRACE_SAMPLE] executed
    jobs (default 10, minimum 1 = every execution). *)
let default_sample () =
  Flow_obs.Env.int ~name:"PSAFLOW_TRACE_SAMPLE" ~default:10 ~min:1 ()

(** Slow-exemplar threshold: executions at or over [PSAFLOW_SLOW_MS]
    milliseconds retain their trace even when not sampled (default
    250 ms, minimum 1). *)
let default_slow_ms () =
  float_of_int (Flow_obs.Env.int ~name:"PSAFLOW_SLOW_MS" ~default:250 ~min:1 ())

type record = {
  request_id : string;
  job_id : int;
  label : string;
  seq : int;  (** executed-job sequence number, 0-based *)
  wall_ms : float;
  sampled : bool;
  slow : bool;
  spans : Trace.span list;
}

type t = {
  lock : Mutex.t;
  sample_every : int;
  slow_ms : float;
  capacity : int;
  slow_capacity : int;
  mutable sampled_ring : record list;  (** newest first, <= capacity *)
  mutable slow_ring : record list;  (** newest first, <= slow_capacity *)
  mutable executed : int;
  mutable retained : int;
  mutable retained_slow : int;
}

let create ?(capacity = 64) ?(slow_capacity = 32) ?sample ?slow_ms () =
  let sample =
    match sample with Some s -> max 1 s | None -> default_sample ()
  in
  let slow_ms =
    match slow_ms with Some m -> m | None -> default_slow_ms ()
  in
  {
    lock = Mutex.create ();
    sample_every = sample;
    slow_ms;
    capacity;
    slow_capacity;
    sampled_ring = [];
    slow_ring = [];
    executed = 0;
    retained = 0;
    retained_slow = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let take n l =
  let rec go n acc = function
    | [] -> List.rev acc
    | _ when n <= 0 -> List.rev acc
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

(** Run [f] (one job execution) inside a request recording and retain
    the trace if this execution is sampled or slow.  The recording
    closes even if [f] raises. *)
let record t ~request_id ~job_id ~label f =
  let seq =
    with_lock t (fun () ->
        let s = t.executed in
        t.executed <- t.executed + 1;
        s)
  in
  let sampled = seq mod t.sample_every = 0 in
  Trace.request_begin ();
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
      let spans = Trace.request_end () in
      let slow = wall_ms >= t.slow_ms in
      if sampled || slow then
        let r =
          { request_id; job_id; label; seq; wall_ms; sampled; slow; spans }
        in
        with_lock t (fun () ->
            if sampled then begin
              t.retained <- t.retained + 1;
              t.sampled_ring <- take t.capacity (r :: t.sampled_ring)
            end;
            if slow then begin
              t.retained_slow <- t.retained_slow + 1;
              t.slow_ring <- take t.slow_capacity (r :: t.slow_ring)
            end))
    f

(** Capture counters for [svc-metrics]: executions seen, traces
    retained into the sampled ring, slow exemplars retained. *)
let stats t =
  with_lock t (fun () -> (t.executed, t.retained, t.retained_slow))

let record_json (r : record) : Json.t =
  let trace =
    (* the normalized Chrome export is byte-deterministic per request *)
    match Json.parse_result (Trace.export_spans ~normalize:true r.spans) with
    | Ok doc -> doc
    | Error _ -> Json.Null
  in
  Json.Obj
    [
      ("request_id", Json.String r.request_id);
      ("job_id", Json.Int r.job_id);
      ("label", Json.String r.label);
      ("seq", Json.Int r.seq);
      ("wall_ms", Json.Float r.wall_ms);
      ("sampled", Json.Bool r.sampled);
      ("slow", Json.Bool r.slow);
      ("spans", Json.Int (List.length r.spans));
      ("trace", trace);
    ]

(** The requested ring as JSON, newest record first. *)
let to_json ?(slow = false) t : Json.t =
  let ring =
    with_lock t (fun () -> if slow then t.slow_ring else t.sampled_ring)
  in
  Json.List (List.map record_json ring)
