(** Content-addressed result store.

    Finished flow results are stored under a digest of everything that
    determines them — the MiniC source text, the workload sizes, the
    mode, the PSA strategy and its parameters — the same keying
    discipline as the interpreter's [Profile_cache] (which keys on
    observable program content, never on names).  Flow execution is
    deterministic, so two submissions with equal keys have equal
    results: duplicates are deduped into one execution and repeat
    requests are O(1) hits here.

    Capacity is bounded with LRU eviction (lookups refresh recency).
    The table is guarded by a mutex so scheduler workers and server
    connection threads can share it. *)

type 'a t = {
  capacity : int;
  lock : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;  (** recency clock: larger = more recently used *)
  mutable hits : int;
  mutable misses : int;
}

and 'a entry = { value : 'a; mutable last_use : int }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Store.create: capacity must be positive";
  {
    capacity;
    lock = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    tick = 0;
    hits = 0;
    misses = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** Digest of the determining inputs of one flow execution.  [source] is
    the full MiniC text (content, not benchmark name); [workload]
    canonicalises the profile/secondary/eval sizes. *)
let key ~source ~mode ~strategy ~x_threshold ~budget ~workload =
  let buf = Buffer.create (String.length source + 64) in
  Buffer.add_string buf source;
  Buffer.add_char buf '\000';
  Buffer.add_string buf mode;
  Buffer.add_char buf '\000';
  Buffer.add_string buf strategy;
  Buffer.add_char buf '\000';
  Buffer.add_string buf (Printf.sprintf "%.17g" x_threshold);
  Buffer.add_char buf '\000';
  (match budget with
  | Some b -> Buffer.add_string buf (Printf.sprintf "%.17g" b)
  | None -> Buffer.add_string buf "-");
  Buffer.add_char buf '\000';
  Buffer.add_string buf workload;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let find t k =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
          t.hits <- t.hits + 1;
          touch t e;
          Some e.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let mem t k = with_lock t (fun () -> Hashtbl.mem t.table k)

(* Capacity is small (hundreds); a linear scan for the LRU victim keeps
   the structure to one table instead of table + intrusive list. *)
let evict_lru_locked t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best <= e.last_use -> acc
        | _ -> Some (k, e.last_use))
      t.table None
  in
  match victim with Some (k, _) -> Hashtbl.remove t.table k | None -> ()

let add t k v =
  with_lock t (fun () ->
      (match Hashtbl.find_opt t.table k with
      | Some _ -> Hashtbl.remove t.table k
      | None -> ());
      if Hashtbl.length t.table >= t.capacity then evict_lru_locked t;
      t.tick <- t.tick + 1;
      Hashtbl.add t.table k { value = v; last_use = t.tick })

let length t = with_lock t (fun () -> Hashtbl.length t.table)

(** Cumulative (hits, misses) of {!find} since creation. *)
let stats t = with_lock t (fun () -> (t.hits, t.misses))
