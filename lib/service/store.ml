(** Content-addressed result store, sharded by digest prefix.

    Finished flow results are stored under a digest of everything that
    determines them — the MiniC source text, the workload sizes, the
    mode, the PSA strategy and its parameters — the same keying
    discipline as the interpreter's [Profile_cache] (which keys on
    observable program content, never on names).  Flow execution is
    deterministic, so two submissions with equal keys have equal
    results: duplicates are deduped into one execution and repeat
    requests are O(1) hits here.

    The table is split into N independent shards, each with its own
    mutex, LRU clock and hit/miss/eviction counters; a key's shard is a
    pure function of its digest prefix, so concurrent hits on different
    digests never serialize on a shared lock.  MD5 digests are uniform,
    so the shards fill evenly.  [PSAFLOW_STORE_SHARDS] (or the [shards]
    argument) sets the shard count; 1 restores the old single-mutex
    store bit-for-bit.

    Capacity is bounded per shard with LRU eviction (lookups refresh
    recency): a store of capacity C over N shards holds at most
    ceil(C/N) entries per shard. *)

type 'a shard = {
  capacity : int;
  lock : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;  (** recency clock: larger = more recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

and 'a entry = { value : 'a; mutable last_use : int }

type 'a t = { shards : 'a shard array }

let default_shards () =
  Flow_obs.Env.int ~name:"PSAFLOW_STORE_SHARDS" ~default:8 ~min:1 ()

let create ?(shards = default_shards ()) ~capacity () =
  if capacity <= 0 then invalid_arg "Store.create: capacity must be positive";
  if shards <= 0 then invalid_arg "Store.create: shards must be positive";
  let shards = min shards capacity in
  let per_shard = (capacity + shards - 1) / shards in
  {
    shards =
      Array.init shards (fun _ ->
          {
            capacity = per_shard;
            lock = Mutex.create ();
            table = Hashtbl.create (2 * per_shard);
            tick = 0;
            hits = 0;
            misses = 0;
            evictions = 0;
          });
  }

let shard_count t = Array.length t.shards

(** Which shard holds [k]: the first four hex digits of the digest,
    folded and reduced mod the shard count.  Pure, so tests can place
    colliding keys deliberately. *)
let shard_index t k =
  let n = Array.length t.shards in
  if n = 1 then 0
  else begin
    let h = ref 0 in
    for i = 0 to min 3 (String.length k - 1) do
      h := (!h * 16) + (Char.code k.[i] land 15) + (Char.code k.[i] lsr 6)
    done;
    !h mod n
  end

let with_lock (s : _ shard) f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(** Digest of the determining inputs of one flow execution.  [source] is
    the full MiniC text (content, not benchmark name); [workload]
    canonicalises the profile/secondary/eval sizes. *)
let key ~source ~mode ~strategy ~x_threshold ~budget ~workload =
  let buf = Buffer.create (String.length source + 64) in
  Buffer.add_string buf source;
  Buffer.add_char buf '\000';
  Buffer.add_string buf mode;
  Buffer.add_char buf '\000';
  Buffer.add_string buf strategy;
  Buffer.add_char buf '\000';
  Buffer.add_string buf (Printf.sprintf "%.17g" x_threshold);
  Buffer.add_char buf '\000';
  (match budget with
  | Some b -> Buffer.add_string buf (Printf.sprintf "%.17g" b)
  | None -> Buffer.add_string buf "-");
  Buffer.add_char buf '\000';
  Buffer.add_string buf workload;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let touch (s : _ shard) e =
  s.tick <- s.tick + 1;
  e.last_use <- s.tick

let find t k =
  let s = t.shards.(shard_index t k) in
  with_lock s (fun () ->
      match Hashtbl.find_opt s.table k with
      | Some e ->
          s.hits <- s.hits + 1;
          touch s e;
          Some e.value
      | None ->
          s.misses <- s.misses + 1;
          None)

let mem t k =
  let s = t.shards.(shard_index t k) in
  with_lock s (fun () -> Hashtbl.mem s.table k)

(* Per-shard capacity is small (tens); a linear scan for the LRU victim
   keeps the structure to one table instead of table + intrusive list. *)
let evict_lru_locked (s : _ shard) =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best <= e.last_use -> acc
        | _ -> Some (k, e.last_use))
      s.table None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove s.table k;
      s.evictions <- s.evictions + 1
  | None -> ()

let add t k v =
  let s = t.shards.(shard_index t k) in
  with_lock s (fun () ->
      (match Hashtbl.find_opt s.table k with
      | Some _ -> Hashtbl.remove s.table k
      | None -> ());
      if Hashtbl.length s.table >= s.capacity then evict_lru_locked s;
      s.tick <- s.tick + 1;
      Hashtbl.add s.table k { value = v; last_use = s.tick })

let length t =
  Array.fold_left
    (fun acc s -> acc + with_lock s (fun () -> Hashtbl.length s.table))
    0 t.shards

(** Cumulative (hits, misses) of {!find} since creation, summed across
    shards. *)
let stats t =
  Array.fold_left
    (fun (h, m) s -> with_lock s (fun () -> (h + s.hits, m + s.misses)))
    (0, 0) t.shards

(** One shard's observable state, for metrics and the concurrency
    tests. *)
type shard_stat = {
  st_length : int;
  st_capacity : int;
  st_hits : int;
  st_misses : int;
  st_evictions : int;
}

let shard_stats t : shard_stat array =
  Array.map
    (fun s ->
      with_lock s (fun () ->
          {
            st_length = Hashtbl.length s.table;
            st_capacity = s.capacity;
            st_hits = s.hits;
            st_misses = s.misses;
            st_evictions = s.evictions;
          }))
    t.shards
