(** Append-only performance history: commit-keyed benchmark datapoints
    in a JSONL file ([BENCH_history.jsonl]), one JSON object per line,
    plus rolling-median regression gating over the last K entries.

    Unlike the single committed [BENCH_psaflow.json] baseline, the
    history keeps every measured run, so the gate compares a fresh
    number against the {e rolling median} of recent runs — one noisy
    datapoint (a loaded CI host, a cold cache) can neither fail the
    gate by itself nor poison the baseline for later runs.

    Quick and full bench runs measure different workload sizes, so each
    datapoint records which kind it was and gating only ever compares
    like with like.  Entries whose commit equals [exclude_commit] are
    ignored while gating, so re-running the gate at one commit never
    compares a measurement against itself.

    The file format is line-oriented on purpose: appends are atomic
    enough under CI (single writer), merges are trivial (concatenate),
    and a corrupt line degrades to a skipped entry, never a lost
    history. *)

(** One benchmark run: where ([commit]), when ([time], epoch seconds),
    at what scale ([quick]), and the flat metric name -> value map. *)
type datapoint = {
  commit : string;
  time : float;
  quick : bool;
  metrics : (string * float) list;
}

let datapoint_to_json (d : datapoint) : Json.t =
  Json.Obj
    [
      ("commit", Json.String d.commit);
      ("time", Json.Float d.time);
      ("quick", Json.Bool d.quick);
      ( "metrics",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) d.metrics) );
    ]

let datapoint_of_json (j : Json.t) : datapoint option =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let num k = Option.bind (Json.member k j) Json.to_float_opt in
  match (str "commit", Json.member "metrics" j) with
  | Some commit, Some (Json.Obj fields) ->
      Some
        {
          commit;
          time = Option.value ~default:0.0 (num "time");
          quick =
            (match Json.member "quick" j with
            | Some (Json.Bool b) -> b
            | _ -> false);
          metrics =
            List.filter_map
              (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float_opt v))
              fields;
        }
  | _ -> None

(** Append one datapoint as a single JSONL line (creates the file). *)
let append ~path (d : datapoint) =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (datapoint_to_json d));
      output_char oc '\n')

(** Load the history, oldest first.  A missing file is an empty
    history; malformed or alien lines are skipped, not fatal. *)
let load ~path : datapoint list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line when String.trim line = "" -> go acc
          | line -> (
              match Json.parse_result line with
              | Ok j -> (
                  match datapoint_of_json j with
                  | Some d -> go (d :: acc)
                  | None -> go acc)
              | Error _ -> go acc)
        in
        go [])
  end

(** Median of a non-empty list ([None] on empty).  Even length takes
    the mean of the middle pair. *)
let median (vs : float list) : float option =
  match List.sort compare vs with
  | [] -> None
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      Some
        (if n mod 2 = 1 then a.(n / 2)
         else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0)

(** How to compare a value against the rolling median: throughput-like
    metrics regress by falling, latency-like metrics by rising. *)
type direction = Higher_better | Lower_better

type verdict =
  | Pass of { value : float; median : float; used : int }
  | Fail of { value : float; median : float; used : int }
  | Skip of string  (** not enough comparable history; the notice says why *)

(** Rolling window length: gate against the median of the last
    [PSAFLOW_HISTORY_K] comparable entries (default 5, minimum 3). *)
let default_k () =
  Flow_obs.Env.int ~name:"PSAFLOW_HISTORY_K" ~default:5 ~min:3 ()

(** Gate [value] for [metric] against the rolling median of the last
    [k] history entries that ran at the same [quick] scale, carry the
    metric, and are not from [exclude_commit].  With [Higher_better]
    the gate passes iff [value >= factor *. median] (e.g. [factor =
    0.7] allows a 30% dip); with [Lower_better] iff
    [value <= factor *. median] (e.g. [factor = 4.0] allows 4x).
    Fewer than 3 comparable values is a {!Skip}, never a failure: a
    young history cannot block a merge. *)
let gate ?k ?(exclude_commit = "") ~history ~quick ~metric ~direction ~factor
    value : verdict =
  let k = match k with Some k -> max 3 k | None -> default_k () in
  let comparable =
    List.filter_map
      (fun (d : datapoint) ->
        if d.quick = quick && d.commit <> exclude_commit then
          List.assoc_opt metric d.metrics
        else None)
      history
  in
  (* last K: history loads oldest-first *)
  let window =
    let n = List.length comparable in
    if n <= k then comparable
    else List.filteri (fun i _ -> i >= n - k) comparable
  in
  let used = List.length window in
  if used < 3 then
    Skip
      (Printf.sprintf
         "only %d comparable history entr%s for %s (need >= 3); measured %g"
         used
         (if used = 1 then "y" else "ies")
         metric value)
  else
    match median window with
    | None -> Skip (Printf.sprintf "no history for %s" metric)
    | Some m ->
        let ok =
          match direction with
          | Higher_better -> value >= factor *. m
          | Lower_better -> value <= factor *. m
        in
        if ok then Pass { value; median = m; used }
        else Fail { value; median = m; used }
