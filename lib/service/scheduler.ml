(** Job scheduler: a bounded FIFO queue drained by N worker domains.

    Jobs move through queued -> running -> done/failed; every transition
    is timestamped so status responses report wall-clock.  Submissions
    are deduplicated through the content-addressed {!Store}:

    - an identical job already queued or running is {e coalesced} (the
      caller gets the in-flight job's id — one execution, many waiters);
    - an identical finished result still in the store is a {e cached}
      submission (a fresh job id materialises instantly in the [Done]
      state, no execution);
    - otherwise the job is {e fresh} and enqueued, unless the queue is at
      capacity, which is reported as backpressure for the caller to turn
      into a [Queue_full] protocol error.

    [shutdown] drains gracefully: no new submissions are accepted, the
    queue is run to empty, workers are joined.

    Worker count defaults to [PSAFLOW_SERVICE_WORKERS] if set.  Workers
    are OCaml 5 [Domain]s spawned through {!Flow_par.Pool}, so N jobs
    execute truly in parallel on multi-core hosts — systhread workers
    only ever interleaved on one runtime lock.  The scheduler's own
    state stays behind one mutex (submission bookkeeping is cheap);
    results land in the digest-sharded {!Store} whose per-shard locks
    keep concurrent hits from serializing.  All engine state a flow
    touches while running is domain-safe: the profile cache is
    mutex-guarded, MiniC statement ids come from an [Atomic] counter,
    the metrics registry locks, and [rand01] state is per-run. *)

module Metrics = Flow_obs.Metrics

type job = {
  id : int;
  key : string;  (** {!Store} content address *)
  label : string;
  mode : Protocol.mode;
  strategy : Protocol.strategy;
  cached : bool;
  request_id : string;
      (** the submitting request's id; a coalesced submission keeps the
          first requester's id (one execution, one trace) *)
  run : unit -> Protocol.job_result;
  mutable state : Protocol.job_state;
  mutable started_at : float option;
  mutable finished_at : float option;
  submitted_at : float;
  mutable result : Protocol.job_result option;
}

type t = {
  lock : Mutex.t;
  work : Condition.t;  (** signalled when the queue gains work or stops *)
  idle : Condition.t;  (** signalled when a worker finishes a job *)
  queue : job Queue.t;
  queue_capacity : int;
  jobs : (int, job) Hashtbl.t;
  active_by_key : (string, job) Hashtbl.t;  (** queued/running only *)
  store : Protocol.job_result Store.t;
  metrics : Metrics.t;
  req_log : Req_trace.t;  (** sampled + slow request-trace rings *)
  mutable next_id : int;
  mutable accepting : bool;
  mutable stopping : bool;
  mutable running : int;
  mutable workers : Flow_par.Pool.workers option;
}

(* Default domain count: one worker per core up to 8 (flow execution is
   memory-bandwidth-hungry, like the DSE pool), never fewer than 2 so a
   slow job cannot starve the queue even on a 1-core container. *)
let default_workers () =
  Flow_obs.Env.int ~name:"PSAFLOW_SERVICE_WORKERS"
    ~default:(max 2 (min 8 (Domain.recommended_domain_count ())))
    ~min:1 ()

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let now () = Unix.gettimeofday ()

let set_queue_gauge_locked t =
  Metrics.set_gauge t.metrics "queue_depth" (float_of_int (Queue.length t.queue))

let finish_locked t job outcome =
  job.finished_at <- Some (now ());
  (match outcome with
  | Ok r ->
      job.state <- Protocol.Done;
      job.result <- Some r;
      Store.add t.store job.key r;
      Metrics.incr t.metrics "jobs_completed";
      Flow_obs.Log.debugf "scheduler: job #%d (%s) done" job.id job.label;
      (match (job.started_at, job.finished_at) with
      | Some a, Some b -> Metrics.observe t.metrics "flow_wall_s" (b -. a)
      | _ -> ())
  | Error msg ->
      job.state <- Protocol.Failed msg;
      Metrics.incr t.metrics "jobs_failed";
      Flow_obs.Log.warnf "scheduler: job #%d (%s) failed: %s" job.id job.label
        msg);
  (* fresh-disposition latency: queue wait + execution, submit to
     finish (the cached/coalesced histograms live in [submit]) *)
  Metrics.observe t.metrics "job_ms_fresh"
    (1000.0 *. (now () -. job.submitted_at));
  Flow_obs.Trace.instant ~cat:"scheduler" "job.finish"
    ~args:
      [
        ("job_id", Flow_obs.Attr.Int job.id);
        ("request_id", Flow_obs.Attr.String job.request_id);
        ( "state",
          Flow_obs.Attr.String (Protocol.state_to_string job.state) );
      ];
  Hashtbl.remove t.active_by_key job.key;
  t.running <- t.running - 1;
  Condition.broadcast t.idle

let worker_loop t (_worker : int) =
  let rec next () =
    Mutex.lock t.lock;
    let rec await () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if t.stopping then None
      else (
        Condition.wait t.work t.lock;
        await ())
    in
    match await () with
    | None ->
        Mutex.unlock t.lock;
        ()
    | Some job ->
        job.state <- Protocol.Running;
        job.started_at <- Some (now ());
        t.running <- t.running + 1;
        set_queue_gauge_locked t;
        Mutex.unlock t.lock;
        Flow_obs.Log.debugf "scheduler: job #%d (%s) running" job.id job.label;
        (* the whole execution — start instant, flow root span, finish
           instant — runs inside a request recording; Req_trace retains
           it when sampled or slow *)
        Req_trace.record t.req_log ~request_id:job.request_id ~job_id:job.id
          ~label:job.label (fun () ->
            Flow_obs.Trace.instant ~cat:"scheduler" "job.start"
              ~args:
                [
                  ("job_id", Flow_obs.Attr.Int job.id);
                  ("request_id", Flow_obs.Attr.String job.request_id);
                ];
            let outcome =
              match job.run () with
              | r -> Ok r
              | exception e -> Error (Printexc.to_string e)
            in
            with_lock t (fun () -> finish_locked t job outcome));
        next ()
  in
  next ()

let create ?(workers = default_workers ()) ?(queue_capacity = 64)
    ?(store_capacity = 256) ?store_shards ?trace_sample ?trace_slow_ms ~metrics
    () =
  if workers <= 0 then invalid_arg "Scheduler.create: workers must be positive";
  if queue_capacity <= 0 then
    invalid_arg "Scheduler.create: queue_capacity must be positive";
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      queue_capacity;
      jobs = Hashtbl.create 64;
      active_by_key = Hashtbl.create 64;
      store = Store.create ?shards:store_shards ~capacity:store_capacity ();
      metrics;
      req_log =
        Req_trace.create ?sample:trace_sample ?slow_ms:trace_slow_ms ();
      next_id = 0;
      accepting = true;
      stopping = false;
      running = 0;
      workers = None;
    }
  in
  Metrics.set_gauge metrics "queue_depth" 0.0;
  Metrics.set_gauge metrics "worker_domains" (float_of_int workers);
  t.workers <- Some (Flow_par.Pool.spawn_workers workers (worker_loop t));
  t

(** Submit one resolved job.  [run] must be self-contained (it executes
    on a worker thread).  [request_id] names the originating request in
    the job's trace and lifecycle instants; it plays no part in
    dedup — coalescing and caching still key on [key] alone.  Returns
    the job id and how the submission was disposed of; [Error] is
    queue-full backpressure or a draining scheduler. *)
let submit t ~key ~label ~mode ~strategy ~request_id run :
    (int * [ `Fresh | `Coalesced | `Cached ], [ `Queue_full | `Shutting_down ])
    result =
  let t0 = now () in
  with_lock t (fun () ->
      if not t.accepting then Error `Shutting_down
      else
        let submitted disposition (job_id : int) =
          Flow_obs.Log.debugf "scheduler: job #%d (%s) submitted (%s)" job_id
            label
            (Protocol.disposition_to_string disposition);
          Flow_obs.Trace.instant ~cat:"scheduler" "job.submit"
            ~args:
              [
                ("job_id", Flow_obs.Attr.Int job_id);
                ("request_id", Flow_obs.Attr.String request_id);
                ( "disposition",
                  Flow_obs.Attr.String
                    (Protocol.disposition_to_string disposition) );
              ];
          (* cached/coalesced submissions never execute: their whole
             service latency is this bookkeeping, recorded per
             disposition (the fresh histogram is fed at finish) *)
          (match disposition with
          | `Cached ->
              Metrics.observe t.metrics "job_ms_cached"
                (1000.0 *. (now () -. t0))
          | `Coalesced ->
              Metrics.observe t.metrics "job_ms_coalesced"
                (1000.0 *. (now () -. t0))
          | `Fresh -> ());
          Ok (job_id, disposition)
        in
        match Hashtbl.find_opt t.active_by_key key with
        | Some live -> submitted `Coalesced live.id
        | None -> (
            let fresh ~cached ~result ~state =
              t.next_id <- t.next_id + 1;
              {
                id = t.next_id;
                key;
                label;
                mode;
                strategy;
                cached;
                request_id;
                run;
                state;
                started_at = None;
                finished_at = None;
                submitted_at = now ();
                result;
              }
            in
            match Store.find t.store key with
            | Some r ->
                let job =
                  fresh ~cached:true ~result:(Some r) ~state:Protocol.Done
                in
                Hashtbl.add t.jobs job.id job;
                submitted `Cached job.id
            | None ->
                if Queue.length t.queue >= t.queue_capacity then
                  Error `Queue_full
                else begin
                  let job =
                    fresh ~cached:false ~result:None ~state:Protocol.Queued
                  in
                  Hashtbl.add t.jobs job.id job;
                  Hashtbl.add t.active_by_key key job;
                  Queue.push job t.queue;
                  set_queue_gauge_locked t;
                  Condition.signal t.work;
                  submitted `Fresh job.id
                end))

let view_locked (j : job) : Protocol.job_view =
  let wall_s =
    match (j.started_at, j.finished_at) with
    | Some a, Some b -> Some (b -. a)
    | Some a, None -> Some (now () -. a)
    | None, _ -> None
  in
  {
    Protocol.job_id = j.id;
    label = j.label;
    mode = j.mode;
    strategy = j.strategy;
    state = j.state;
    cached = j.cached;
    wall_s;
  }

let status t id : Protocol.job_view option =
  with_lock t (fun () ->
      Option.map view_locked (Hashtbl.find_opt t.jobs id))

let result t id : (Protocol.job_view * Protocol.job_result option) option =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> None
      | Some j -> Some (view_locked j, j.result))

(** All jobs, most recent first. *)
let list t : Protocol.job_view list =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs []
      |> List.sort (fun (a : job) b -> compare b.id a.id)
      |> List.map view_locked)

let store_stats t = Store.stats t.store
let store_shard_stats t = Store.shard_stats t.store

(** Retained request traces (the sampled ring, or the slow ring with
    [~slow:true]) as JSON, newest first. *)
let traces ?slow t = Req_trace.to_json ?slow t.req_log

(** (executions recorded, sampled traces retained, slow exemplars
    retained). *)
let trace_stats t = Req_trace.stats t.req_log

(** Stop accepting submissions, run the queue dry, join the worker
    domains. *)
let shutdown t =
  Mutex.lock t.lock;
  t.accepting <- false;
  while not (Queue.is_empty t.queue && t.running = 0) do
    Condition.wait t.idle t.lock
  done;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  match t.workers with
  | Some w ->
      Flow_par.Pool.join_workers w;
      t.workers <- None
  | None -> ()
