(** A small, self-contained JSON library (value type, encoder, pretty
    printer, recursive-descent parser).  The repository deliberately
    carries its own: the service protocol, the CLI's [--json] reports and
    the perf benchmark's [BENCH_psaflow.json] all need machine-readable
    output, and no JSON package is among the baked-in dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion-ordered; keys should be unique *)

exception Parse_error of string * int
(** Message and 0-based byte offset of a malformed document. *)

val to_string : t -> string
(** Compact single-line encoding.  Floats are printed with the shortest
    representation that round-trips, always containing ['.'] or ['e'] so
    they re-parse as [Float]; non-finite floats raise [Invalid_argument]
    (JSON has no representation for them). *)

val to_string_pretty : t -> string
(** Two-space-indented multi-line encoding, trailing newline included. *)

val parse : string -> t
(** Parse one JSON document (surrounding whitespace allowed).
    Numbers without ['.'], ['e'] or ['E'] that fit in [int] become
    [Int]; everything else numeric becomes [Float].
    @raise Parse_error on malformed input or trailing garbage. *)

val parse_result : string -> (t, string) result
(** [parse] with the error rendered as ["offset N: message"]. *)

(** {1 Accessors} — total lookups used when decoding protocol messages. *)

val member : string -> t -> t option
(** Field of an object; [None] for missing keys or non-objects. *)

val to_int_opt : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float_opt : t -> float option
(** [Float f] and [Int n] (as [float_of_int n]). *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option

val equal : t -> t -> bool
(** Structural equality; [Float] compared by bit pattern so that
    round-trip properties hold for [-0.] too. *)
