(** Wire protocol of the flow service.

    Messages are length-prefixed JSON: a 4-byte big-endian payload length
    followed by one JSON document encoded with {!Json.to_string}.  Both
    directions carry a protocol version field ["v"]; a server answering a
    request of an unknown version replies with a [Bad_version] error
    instead of guessing.

    Requests: [submit_flow] (a registered benchmark or inline MiniC
    source; informed/uninformed mode; PSA strategy; optional budget),
    [job_status], [fetch_result], [list_jobs], [metrics], [shutdown] —
    and, since protocol version 2, [submit_batch]/[fetch_batch], which
    carry many jobs in one frame so a load generator does not pay one
    round-trip per request.  Batch items succeed or fail independently:
    one poison MiniC source rejects that item with its typed error
    while the rest of the frame proceeds.

    Errors are typed so clients can react programmatically: MiniC parse
    and typecheck failures, unknown benchmarks, queue-full backpressure,
    connection-limit rejection ([server_busy]), client-side timeouts and
    malformed/mis-versioned requests each have their own tag. *)

(** Current protocol version.  v2 added [submit_batch]/[fetch_batch]
    and the [server_busy]/[timeout] error tags; v3 added the optional
    [request_id] submission field (client-minted, threaded through the
    scheduler into every span of the job's trace) and the [svc_trace]
    request for retrieving sampled/slow request traces. *)
let version = 3

(** Oldest version still accepted on decode.  v1 peers can keep
    speaking every single-job request unchanged; only the batch frames
    demand v2. *)
let min_version = 1

(** Items allowed in one [submit_batch]/[fetch_batch] frame.  A frame
    beyond this is refused with [Bad_request] instead of letting one
    peer monopolise the scheduler lock for an unbounded scan. *)
let max_batch_jobs = 256

(** Frames larger than this are refused on both ends; a stray
    non-protocol peer writing garbage otherwise turns into a
    multi-gigabyte allocation. *)
let max_frame_bytes = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Message types                                                       *)
(* ------------------------------------------------------------------ *)

type mode = Informed | Uninformed

type strategy = Fig3 | Model_perf | Model_cost | Model_energy

type source =
  | Bench of string  (** id in [Benchmarks.Registry] *)
  | Inline of string  (** MiniC source text *)

type submission = {
  source : source;
  mode : mode;
  strategy : strategy;
  x_threshold : float;
  budget : float option;
  trace : bool;  (** capture a Chrome trace of the job's execution *)
  request_id : string option;
      (** v3: client-minted id carried through scheduler and flow spans;
          deliberately excluded from the result-store key so identical
          work still coalesces and caches across request ids *)
}

let submission ?(mode = Informed) ?(strategy = Fig3) ?(x_threshold = 2.0)
    ?budget ?(trace = false) ?request_id source =
  { source; mode; strategy; x_threshold; budget; trace; request_id }

type request =
  | Submit_flow of submission
  | Submit_batch of submission list  (** v2: many submissions, one frame *)
  | Job_status of int
  | Fetch_result of int
  | Fetch_batch of int list  (** v2: many fetches, one frame *)
  | List_jobs
  | Metrics
  | Svc_trace of { slow : bool }
      (** v3: retrieve retained request traces — the sampled ring, or
          the slow-exemplar ring with [slow = true] *)
  | Shutdown

type job_state = Queued | Running | Done | Failed of string

type job_view = {
  job_id : int;
  label : string;  (** benchmark id, or ["inline"] *)
  mode : mode;
  strategy : strategy;
  state : job_state;
  cached : bool;  (** served from the result store without execution *)
  wall_s : float option;  (** execution wall-clock, once finished *)
}

type job_result = {
  report : string;  (** rendered exactly as the [psaflow run] CLI prints *)
  data : Json.t;  (** structured designs/timings/log *)
}

type error_kind =
  | Bad_request of string  (** malformed JSON or missing/invalid fields *)
  | Bad_version of int
  | Unknown_benchmark of string
  | Minic_parse_error of string
  | Minic_type_error of string
  | Queue_full
  | Server_busy  (** connection limit reached; queue-full-style rejection *)
  | Timeout of string  (** client-side connect/receive deadline elapsed *)
  | Unknown_job of int
  | Server_error of string

type disposition = [ `Fresh | `Coalesced | `Cached ]

(** One item of a [submitted_batch] response: accepted with an id and
    disposition, or rejected with the same typed error a single-job
    submission would get. *)
type batch_submit_item = (int * disposition, error_kind) result

(** One item of a [results_batch] response: the job's view plus its
    result once [Done] ([None] while queued/running — the client
    decides whether to re-poll), or a typed error (unknown id,
    failure). *)
type batch_fetch_item = (job_view * job_result option, error_kind) result

type response =
  | Submitted of { job_id : int; disposition : disposition }
  | Submitted_batch of batch_submit_item list
  | Status of job_view
  | Result of job_view * job_result
  | Results_batch of batch_fetch_item list
  | Jobs of job_view list
  | Metrics_data of Json.t
  | Traces of Json.t
      (** v3: retained request-trace records, newest first *)
  | Shutting_down
  | Error of error_kind

(* ------------------------------------------------------------------ *)
(* String tables                                                       *)
(* ------------------------------------------------------------------ *)

let mode_to_string = function Informed -> "informed" | Uninformed -> "uninformed"

let mode_of_string = function
  | "informed" -> Some Informed
  | "uninformed" -> Some Uninformed
  | _ -> None

let strategy_to_string = function
  | Fig3 -> "fig3"
  | Model_perf -> "model_perf"
  | Model_cost -> "model_cost"
  | Model_energy -> "model_energy"

let strategy_of_string = function
  | "fig3" -> Some Fig3
  | "model_perf" -> Some Model_perf
  | "model_cost" -> Some Model_cost
  | "model_energy" -> Some Model_energy
  | _ -> None

let strategy_names = [ "fig3"; "model_perf"; "model_cost"; "model_energy" ]

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"

let disposition_to_string = function
  | `Fresh -> "fresh"
  | `Coalesced -> "coalesced"
  | `Cached -> "cached"

let error_message = function
  | Bad_request m -> Printf.sprintf "bad request: %s" m
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Unknown_benchmark b -> Printf.sprintf "unknown benchmark %S" b
  | Minic_parse_error m -> Printf.sprintf "MiniC parse error: %s" m
  | Minic_type_error m -> Printf.sprintf "MiniC type error: %s" m
  | Queue_full -> "job queue is full, retry later"
  | Server_busy -> "server connection limit reached, retry later"
  | Timeout m -> Printf.sprintf "timed out: %s" m
  | Unknown_job id -> Printf.sprintf "no job #%d" id
  | Server_error m -> Printf.sprintf "server error: %s" m

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                       *)
(* ------------------------------------------------------------------ *)

open Json

let opt_field name f = function None -> [] | Some v -> [ (name, f v) ]

let submission_fields (s : submission) =
  (match s.source with
  | Bench id -> [ ("bench", String id) ]
  | Inline src -> [ ("source", String src) ])
  @ [
      ("mode", String (mode_to_string s.mode));
      ("strategy", String (strategy_to_string s.strategy));
      ("x_threshold", Float s.x_threshold);
    ]
  @ opt_field "budget" (fun b -> Float b) s.budget
  @ (if s.trace then [ ("trace", Bool true) ] else [])
  @ opt_field "request_id" (fun r -> String r) s.request_id

let request_to_json = function
  | Submit_flow s ->
      Obj
        ([ ("v", Int version); ("type", String "submit_flow") ]
        @ submission_fields s)
  | Submit_batch ss ->
      Obj
        [
          ("v", Int version);
          ("type", String "submit_batch");
          ("jobs", List (List.map (fun s -> Obj (submission_fields s)) ss));
        ]
  | Job_status id ->
      Obj [ ("v", Int version); ("type", String "job_status"); ("job_id", Int id) ]
  | Fetch_result id ->
      Obj
        [ ("v", Int version); ("type", String "fetch_result"); ("job_id", Int id) ]
  | Fetch_batch ids ->
      Obj
        [
          ("v", Int version);
          ("type", String "fetch_batch");
          ("job_ids", List (List.map (fun id -> Int id) ids));
        ]
  | List_jobs -> Obj [ ("v", Int version); ("type", String "list_jobs") ]
  | Metrics -> Obj [ ("v", Int version); ("type", String "metrics") ]
  | Svc_trace { slow } ->
      Obj [ ("v", Int version); ("type", String "svc_trace"); ("slow", Bool slow) ]
  | Shutdown -> Obj [ ("v", Int version); ("type", String "shutdown") ]

let job_view_to_json (j : job_view) =
  Obj
    ([
       ("job_id", Int j.job_id);
       ("label", String j.label);
       ("mode", String (mode_to_string j.mode));
       ("strategy", String (strategy_to_string j.strategy));
       ("state", String (state_to_string j.state));
       ("cached", Bool j.cached);
     ]
    @ (match j.state with
      | Failed msg -> [ ("error", String msg) ]
      | _ -> [])
    @ opt_field "wall_s" (fun s -> Float s) j.wall_s)

(* The wire tag and extra payload fields of a typed error, shared by
   top-level error responses and per-item batch errors. *)
let error_tag_fields e =
  match e with
  | Bad_request m -> ("bad_request", [ ("message", String m) ])
  | Bad_version v -> ("bad_version", [ ("got", Int v) ])
  | Unknown_benchmark b -> ("unknown_benchmark", [ ("benchmark", String b) ])
  | Minic_parse_error m -> ("minic_parse_error", [ ("message", String m) ])
  | Minic_type_error m -> ("minic_type_error", [ ("message", String m) ])
  | Queue_full -> ("queue_full", [])
  | Server_busy -> ("server_busy", [])
  | Timeout m -> ("timeout", [ ("message", String m) ])
  | Unknown_job id -> ("unknown_job", [ ("job_id", Int id) ])
  | Server_error m -> ("server_error", [ ("message", String m) ])

(** The stable wire tag of an error kind (also names the per-error-kind
    latency histograms in [svc-metrics]). *)
let error_kind_tag e = fst (error_tag_fields e)

let error_fields e =
  let tag, extra = error_tag_fields e in
  ("error", String tag) :: extra

let error_to_json e =
  Obj ([ ("v", Int version); ("type", String "error") ] @ error_fields e)

let batch_submit_item_to_json : batch_submit_item -> Json.t = function
  | Ok (job_id, disposition) ->
      Obj
        [
          ("job_id", Int job_id);
          ("disposition", String (disposition_to_string disposition));
        ]
  | Error e -> Obj (error_fields e)

let batch_fetch_item_to_json : batch_fetch_item -> Json.t = function
  | Ok (view, result) ->
      Obj
        (("job", job_view_to_json view)
        ::
        (match result with
        | Some r -> [ ("report", String r.report); ("data", r.data) ]
        | None -> []))
  | Error e -> Obj (error_fields e)

let response_to_json = function
  | Submitted { job_id; disposition } ->
      Obj
        [
          ("v", Int version);
          ("type", String "submitted");
          ("job_id", Int job_id);
          ("disposition", String (disposition_to_string disposition));
        ]
  | Submitted_batch items ->
      Obj
        [
          ("v", Int version);
          ("type", String "submitted_batch");
          ("items", List (List.map batch_submit_item_to_json items));
        ]
  | Results_batch items ->
      Obj
        [
          ("v", Int version);
          ("type", String "results_batch");
          ("items", List (List.map batch_fetch_item_to_json items));
        ]
  | Status j ->
      Obj [ ("v", Int version); ("type", String "status"); ("job", job_view_to_json j) ]
  | Result (j, r) ->
      Obj
        [
          ("v", Int version);
          ("type", String "result");
          ("job", job_view_to_json j);
          ("report", String r.report);
          ("data", r.data);
        ]
  | Jobs js ->
      Obj
        [
          ("v", Int version);
          ("type", String "jobs");
          ("jobs", List (List.map job_view_to_json js));
        ]
  | Metrics_data m ->
      Obj [ ("v", Int version); ("type", String "metrics"); ("metrics", m) ]
  | Traces t ->
      Obj [ ("v", Int version); ("type", String "traces"); ("traces", t) ]
  | Shutting_down -> Obj [ ("v", Int version); ("type", String "shutting_down") ]
  | Error e -> error_to_json e

(* ------------------------------------------------------------------ *)
(* JSON decoding                                                       *)
(* ------------------------------------------------------------------ *)

(* Decoders return [Error (Bad_request _)] (or [Bad_version]) rather than
   raising: a daemon must answer garbage with a typed error, not die. *)

let field name conv j =
  match Option.bind (member name j) conv with
  | Some v -> Ok v
  | None -> Error (Bad_request (Printf.sprintf "missing or invalid %S" name))

let opt name conv j =
  match member name j with
  | None | Some Null -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> Error (Bad_request (Printf.sprintf "invalid %S" name)))

let ( let* ) = Result.bind

(* Accepts any version in [min_version, version] and returns it: the
   caller gates version-specific message types on the value. *)
let check_version j =
  let* v = field "v" to_int_opt j in
  if v >= min_version && v <= version then Ok v else Error (Bad_version v)

(* [v] is the enclosing frame's declared protocol version; batch items
   inherit it.  The v3 [request_id] field is refused — not silently
   dropped — in older-versioned frames, matching the batch-frame
   discipline. *)
let submission_of_json ?(v = version) j =
  let* source =
    match (member "bench" j, member "source" j) with
    | Some (String id), None -> Ok (Bench id)
    | None, Some (String src) -> Ok (Inline src)
    | _ -> Error (Bad_request "exactly one of \"bench\"/\"source\" required")
  in
  let* mode = opt "mode" (fun v -> Option.bind (to_string_opt v) mode_of_string) j in
  let* strategy =
    opt "strategy" (fun v -> Option.bind (to_string_opt v) strategy_of_string) j
  in
  let* x_threshold = opt "x_threshold" to_float_opt j in
  let* budget = opt "budget" to_float_opt j in
  let* trace = opt "trace" to_bool_opt j in
  let* request_id = opt "request_id" to_string_opt j in
  let* () =
    if request_id <> None && v < 3 then
      Error (Bad_request "\"request_id\" requires protocol version >= 3")
    else Ok ()
  in
  Ok
    {
      source;
      mode = Option.value mode ~default:Informed;
      strategy = Option.value strategy ~default:Fig3;
      x_threshold = Option.value x_threshold ~default:2.0;
      budget;
      trace = Option.value trace ~default:false;
      request_id;
    }

(* A batch list must be present, within [max_batch_jobs], and non-empty
   (an empty batch is almost certainly a client bug; refusing it beats
   answering with an empty frame that looks like success). *)
let batch_items name j =
  let* items = field name to_list_opt j in
  if items = [] then Error (Bad_request (Printf.sprintf "empty %S" name))
  else if List.length items > max_batch_jobs then
    Error
      (Bad_request
         (Printf.sprintf "batch of %d exceeds the limit of %d"
            (List.length items) max_batch_jobs))
  else Ok items

(* Version-gated message types (batches in v2, trace retrieval in v3):
   a peer declaring an older version gets a typed refusal naming the
   version floor instead of a decoded message its declared version
   cannot contain. *)
let require_version ~floor v ty =
  if v >= floor then Ok ()
  else
    Error
      (Bad_request
         (Printf.sprintf "%S requires protocol version >= %d" ty floor))

let require_v2 v ty = require_version ~floor:2 v ty
let require_v3 v ty = require_version ~floor:3 v ty

let request_of_json j : (request, error_kind) result =
  let* v = check_version j in
  let* ty = field "type" to_string_opt j in
  match ty with
  | "submit_flow" ->
      let* s = submission_of_json ~v j in
      Ok (Submit_flow s)
  | "submit_batch" ->
      let* () = require_v2 v ty in
      let* items = batch_items "jobs" j in
      let* subs =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* s = submission_of_json ~v item in
            Ok (s :: acc))
          (Ok []) items
      in
      Ok (Submit_batch (List.rev subs))
  | "job_status" ->
      let* id = field "job_id" to_int_opt j in
      Ok (Job_status id)
  | "fetch_result" ->
      let* id = field "job_id" to_int_opt j in
      Ok (Fetch_result id)
  | "fetch_batch" ->
      let* () = require_v2 v ty in
      let* items = batch_items "job_ids" j in
      let* ids =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match to_int_opt item with
            | Some id -> Ok (id :: acc)
            | None -> Error (Bad_request "invalid job id in \"job_ids\""))
          (Ok []) items
      in
      Ok (Fetch_batch (List.rev ids))
  | "list_jobs" -> Ok List_jobs
  | "metrics" -> Ok Metrics
  | "svc_trace" ->
      let* () = require_v3 v ty in
      let* slow = opt "slow" to_bool_opt j in
      Ok (Svc_trace { slow = Option.value slow ~default:false })
  | "shutdown" -> Ok Shutdown
  | other -> Error (Bad_request (Printf.sprintf "unknown request type %S" other))

let job_view_of_json j : (job_view, error_kind) result =
  let* job_id = field "job_id" to_int_opt j in
  let* label = field "label" to_string_opt j in
  let* mode = field "mode" (fun v -> Option.bind (to_string_opt v) mode_of_string) j in
  let* strategy =
    field "strategy" (fun v -> Option.bind (to_string_opt v) strategy_of_string) j
  in
  let* state_s = field "state" to_string_opt j in
  let* state =
    match state_s with
    | "queued" -> Ok Queued
    | "running" -> Ok Running
    | "done" -> Ok Done
    | "failed" ->
        let msg =
          Option.value ~default:"unknown failure"
            (Option.bind (member "error" j) to_string_opt)
        in
        Ok (Failed msg)
    | s -> Error (Bad_request (Printf.sprintf "unknown job state %S" s))
  in
  let* cached = field "cached" to_bool_opt j in
  let* wall_s = opt "wall_s" to_float_opt j in
  Ok { job_id; label; mode; strategy; state; cached; wall_s }

let error_of_json j : (error_kind, error_kind) result =
  let* tag = field "error" to_string_opt j in
  let msg () =
    Option.value ~default:""
      (Option.bind (member "message" j) to_string_opt)
  in
  match tag with
  | "bad_request" -> Ok (Bad_request (msg ()))
  | "bad_version" ->
      let got =
        Option.value ~default:(-1) (Option.bind (member "got" j) to_int_opt)
      in
      Ok (Bad_version got)
  | "unknown_benchmark" ->
      let b =
        Option.value ~default:""
          (Option.bind (member "benchmark" j) to_string_opt)
      in
      Ok (Unknown_benchmark b)
  | "minic_parse_error" -> Ok (Minic_parse_error (msg ()))
  | "minic_type_error" -> Ok (Minic_type_error (msg ()))
  | "queue_full" -> Ok Queue_full
  | "server_busy" -> Ok Server_busy
  | "timeout" -> Ok (Timeout (msg ()))
  | "unknown_job" ->
      let* id = field "job_id" to_int_opt j in
      Ok (Unknown_job id)
  | "server_error" -> Ok (Server_error (msg ()))
  | s -> Error (Bad_request (Printf.sprintf "unknown error tag %S" s))

let disposition_of_json j =
  let* disp = field "disposition" to_string_opt j in
  match disp with
  | "fresh" -> Ok `Fresh
  | "coalesced" -> Ok `Coalesced
  | "cached" -> Ok `Cached
  | s -> Error (Bad_request (Printf.sprintf "unknown disposition %S" s))

(* A batch item carrying an "error" field is a per-item typed error;
   anything else decodes as the success shape. *)
let batch_submit_item_of_json item : (batch_submit_item, error_kind) result =
  match member "error" item with
  | Some _ ->
      let* e = error_of_json item in
      Ok (Stdlib.Error e)
  | None ->
      let* job_id = field "job_id" to_int_opt item in
      let* disposition = disposition_of_json item in
      Ok (Stdlib.Ok (job_id, disposition))

let batch_fetch_item_of_json item : (batch_fetch_item, error_kind) result =
  match member "error" item with
  | Some _ ->
      let* e = error_of_json item in
      Ok (Stdlib.Error e)
  | None -> (
      let* jv = field "job" Option.some item in
      let* view = job_view_of_json jv in
      match (member "report" item, member "data" item) with
      | Some (String report), Some data ->
          Ok (Stdlib.Ok (view, Some { report; data }))
      | None, None -> Ok (Stdlib.Ok (view, None))
      | _ -> Error (Bad_request "batch item carries report without data"))

let decode_batch of_item items =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* v = of_item item in
      Ok (v :: acc))
    (Ok []) items
  |> Result.map List.rev

let response_of_json j : (response, error_kind) result =
  let* v = check_version j in
  let* ty = field "type" to_string_opt j in
  match ty with
  | "submitted" ->
      let* job_id = field "job_id" to_int_opt j in
      let* disposition = disposition_of_json j in
      Ok (Submitted { job_id; disposition })
  | "submitted_batch" ->
      let* () = require_v2 v ty in
      let* items = batch_items "items" j in
      let* items = decode_batch batch_submit_item_of_json items in
      Ok (Submitted_batch items)
  | "results_batch" ->
      let* () = require_v2 v ty in
      let* items = batch_items "items" j in
      let* items = decode_batch batch_fetch_item_of_json items in
      Ok (Results_batch items)
  | "status" ->
      let* jv = field "job" Option.some j in
      let* view = job_view_of_json jv in
      Ok (Status view)
  | "result" ->
      let* jv = field "job" Option.some j in
      let* view = job_view_of_json jv in
      let* report = field "report" to_string_opt j in
      let* data = field "data" Option.some j in
      Ok (Result (view, { report; data }))
  | "jobs" ->
      let* items = field "jobs" to_list_opt j in
      let* views =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* v = job_view_of_json item in
            Ok (v :: acc))
          (Ok []) items
      in
      Ok (Jobs (List.rev views))
  | "metrics" ->
      let* m = field "metrics" Option.some j in
      Ok (Metrics_data m)
  | "traces" ->
      let* () = require_v3 v ty in
      let* t = field "traces" Option.some j in
      Ok (Traces t)
  | "shutting_down" -> Ok Shutting_down
  | "error" ->
      let* e = error_of_json j in
      Ok (Error e)
  | other ->
      Error (Bad_request (Printf.sprintf "unknown response type %S" other))

(* ------------------------------------------------------------------ *)
(* Endpoint addressing                                                 *)
(* ------------------------------------------------------------------ *)

(** Where the daemon listens: a Unix-domain socket path (default) or a
    TCP host/port. *)
type addr = Unix_path of string | Tcp of string * int

let default_socket_path () =
  match Sys.getenv_opt "PSAFLOW_SOCKET" with
  | Some p when p <> "" -> p
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "psaflow.sock"

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(** ["host:port"] parses as TCP; anything else is a socket path. *)
let addr_of_string s =
  match String.rindex_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port -> Tcp (String.sub s 0 i, port)
      | None -> Unix_path s)
  | _ -> Unix_path s

let sockaddr_of_addr = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).h_addr_list.(0)
        with Not_found | Invalid_argument _ -> Unix.inet_addr_loopback
      in
      Unix.ADDR_INET (ip, port)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

type frame_error =
  | Truncated  (** peer closed mid-frame *)
  | Oversized of int  (** declared length exceeds {!max_frame_bytes} *)

exception Frame_error of frame_error

let frame_error_message = function
  | Truncated -> "truncated frame"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes)" n

(** [frame payload] is the wire form: 4-byte big-endian length, then the
    payload.  @raise Frame_error if the payload itself is oversized. *)
let frame payload =
  let n = String.length payload in
  if n > max_frame_bytes then raise (Frame_error (Oversized n));
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(** Decode one frame from [s] starting at [pos].  Returns the payload and
    the offset just past the frame; [None] at end of input (a clean EOF
    boundary).  @raise Frame_error on truncation or an oversized header. *)
let unframe ?(pos = 0) (s : string) : (string * int) option =
  let len = String.length s in
  if pos >= len then None
  else if pos + 4 > len then raise (Frame_error Truncated)
  else
    let n = Int32.to_int (String.get_int32_be s pos) in
    if n < 0 || n > max_frame_bytes then raise (Frame_error (Oversized n))
    else if pos + 4 + n > len then raise (Frame_error Truncated)
    else Some (String.sub s (pos + 4) n, pos + 4 + n)

(* --- channel I/O (used by both the server and the blocking client) --- *)

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then
      let n = Unix.read fd buf off len in
      if n = 0 then raise (Frame_error Truncated) else go (off + n) (len - n)
  in
  go off len

(** Read one frame from [fd]; [None] on a clean EOF at a frame boundary.
    @raise Frame_error on truncation or oversized declarations. *)
let read_frame fd : string option =
  let hdr = Bytes.create 4 in
  match Unix.read fd hdr 0 4 with
  | 0 -> None
  | n ->
      if n < 4 then really_read fd hdr n (4 - n);
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame_bytes then
        raise (Frame_error (Oversized len));
      let body = Bytes.create len in
      really_read fd body 0 len;
      Some (Bytes.unsafe_to_string body)

let write_frame fd payload =
  let data = frame payload in
  let b = Bytes.unsafe_of_string data in
  let rec go off len =
    if len > 0 then
      let n = Unix.write fd b off len in
      go (off + n) (len - n)
  in
  go 0 (Bytes.length b)

(* --- top-level helpers --- *)

let write_request fd r = write_frame fd (Json.to_string (request_to_json r))
let write_response fd r = write_frame fd (Json.to_string (response_to_json r))

let read_request fd : (request, error_kind) result option =
  match read_frame fd with
  | None -> None
  | Some payload ->
      Some
        (match Json.parse_result payload with
        | Error e -> Error (Bad_request ("invalid JSON: " ^ e))
        | Ok j -> request_of_json j)

let read_response fd : (response, error_kind) result option =
  match read_frame fd with
  | None -> None
  | Some payload ->
      Some
        (match Json.parse_result payload with
        | Error e -> Error (Bad_request ("invalid JSON: " ^ e))
        | Ok j -> response_of_json j)
