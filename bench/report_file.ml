(** Shared writer for [BENCH_psaflow.json].

    Two harnesses own disjoint top-level sections of the same file:
    [bench perf] writes the engine sections (interp/parallel/cache/flow)
    and [bench svc-load] writes the [service] section.  Each therefore
    merges: existing sections it does not own are preserved verbatim,
    its own are replaced.  A missing or unparseable file degrades to a
    plain write of the given sections. *)

module Json = Flow_service.Json

let read_sections path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.parse_result s with Ok (Json.Obj fields) -> fields | _ -> []

(** Replace [sections] in the JSON object at [path], keeping every other
    top-level field (in its original position) untouched. *)
let update ~path (sections : (string * Json.t) list) =
  let existing = read_sections path in
  let merged =
    List.map
      (fun (k, v) ->
        match List.assoc_opt k sections with Some nv -> (k, nv) | None -> (k, v))
      existing
    @ List.filter (fun (k, _) -> not (List.mem_assoc k existing)) sections
  in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (Json.Obj merged));
  close_out oc
