(** Shared writer for [BENCH_psaflow.json].

    Two harnesses own disjoint top-level sections of the same file:
    [bench perf] writes the engine sections (interp/parallel/cache/flow)
    and [bench svc-load] writes the [service] section.  Each therefore
    merges: existing sections it does not own are preserved verbatim,
    its own are replaced.  A missing or unparseable file degrades to a
    plain write of the given sections. *)

module Json = Flow_service.Json

let read_sections path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.parse_result s with Ok (Json.Obj fields) -> fields | _ -> []

(** Replace [sections] in the JSON object at [path], keeping every other
    top-level field (in its original position) untouched. *)
let update ~path (sections : (string * Json.t) list) =
  let existing = read_sections path in
  let merged =
    List.map
      (fun (k, v) ->
        match List.assoc_opt k sections with Some nv -> (k, nv) | None -> (k, v))
      existing
    @ List.filter (fun (k, _) -> not (List.mem_assoc k existing)) sections
  in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (Json.Obj merged));
  close_out oc

(* ------------------------------------------------------------------ *)
(* Perf history (BENCH_history.jsonl)                                  *)
(* ------------------------------------------------------------------ *)

module Perf_history = Flow_service.Perf_history

let history_path = "BENCH_history.jsonl"

(** The commit this measurement belongs to: [PSAFLOW_COMMIT] when set
    (CI can pin it), else [git rev-parse --short HEAD], else
    "unknown" — benches must not fail because git is absent. *)
let commit_id () =
  match Sys.getenv_opt "PSAFLOW_COMMIT" with
  | Some c when c <> "" -> c
  | _ -> (
      match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
      | ic ->
          let line = try input_line ic with End_of_file -> "" in
          let status = Unix.close_process_in ic in
          if status = Unix.WEXITED 0 && line <> "" then String.trim line
          else "unknown"
      | exception Unix.Unix_error _ -> "unknown")

(** The gate-relevant scalars of [BENCH_psaflow.json], flattened to
    dotted names.  Fields a given bench run did not (re)write are
    simply absent from the datapoint — the gate skips them. *)
let gated_paths =
  [
    [ "interp"; "threaded"; "mcycles_per_s" ];
    [ "interp"; "bytecode"; "mcycles_per_s" ];
    [ "parallel"; "virtual_mcycles" ];
    [ "dse"; "simulate_call_reduction" ];
    [ "dse"; "guided_warm"; "simulate_calls" ];
    [ "service"; "throughput_rps" ];
    [ "service"; "p50_ms" ];
    [ "service"; "p99_ms" ];
    [ "service"; "wall_s" ];
    [ "service"; "variants"; "throughput_rps" ];
    [ "service"; "variants"; "variant_p50_ms" ];
    [ "service"; "variants"; "variant_p99_ms" ];
    [ "service"; "variants"; "latency_ratio" ];
    [ "service"; "variants"; "memo_hit_rate" ];
  ]

let extract_metrics (sections : (string * Json.t) list) : (string * float) list
    =
  List.filter_map
    (fun path ->
      let rec go j = function
        | [] -> Json.to_float_opt j
        | name :: rest -> Option.bind (Json.member name j) (fun j -> go j rest)
      in
      match path with
      | root :: rest ->
          Option.bind (List.assoc_opt root sections) (fun j -> go j rest)
          |> Option.map (fun v -> (String.concat "." path, v))
      | [] -> None)
    gated_paths

(** Append the current [BENCH_psaflow.json] numbers to the history as
    one commit-keyed datapoint.  Returns the datapoint written. *)
let history_append ~quick () : Perf_history.datapoint =
  let d =
    {
      Perf_history.commit = commit_id ();
      time = Unix.gettimeofday ();
      quick;
      metrics = extract_metrics (read_sections "BENCH_psaflow.json");
    }
  in
  Perf_history.append ~path:history_path d;
  d

(* Gate policy.  Thresholds are deliberately loose — CI containers are
   noisy and 1-core-vs-8-core hosts measure very different absolute
   numbers; the gate exists to catch order-of-magnitude regressions,
   not 5% drift (the trend table is for reading drift). *)
let gate_specs =
  [
    ("interp.threaded.mcycles_per_s", Perf_history.Higher_better, 0.7);
    ("interp.bytecode.mcycles_per_s", Perf_history.Higher_better, 0.7);
    (* call counts are deterministic, so the guided-DSE saving may never
       shrink below ~the rolling median (0.9 tolerates winner-set churn
       as benchmarks evolve, not measurement noise) *)
    ("dse.simulate_call_reduction", Perf_history.Higher_better, 0.9);
    ("service.throughput_rps", Perf_history.Higher_better, 0.5);
    ("service.p99_ms", Perf_history.Lower_better, 4.0);
    (* the memo hit rate is near-deterministic (same schedule, same
       stage keys); the latency ratio divides two same-host timings so
       it is steadier than either absolute number *)
    ("service.variants.memo_hit_rate", Perf_history.Higher_better, 0.9);
    ("service.variants.latency_ratio", Perf_history.Lower_better, 1.5);
  ]

(** Gate the current [BENCH_psaflow.json] against the rolling median of
    the history.  Prints one verdict line per gated metric; returns
    [false] if any metric failed (or is missing from the fresh bench
    file — a measurement that vanished is a harness bug, not noise). *)
let history_gate ~quick () : bool =
  let current = extract_metrics (read_sections "BENCH_psaflow.json") in
  let history = Perf_history.load ~path:history_path in
  let exclude_commit = commit_id () in
  let verdicts =
    List.map
      (fun (metric, direction, factor) ->
      match List.assoc_opt metric current with
      | None ->
          Printf.printf "GATE FAIL: %s missing from BENCH_psaflow.json\n" metric;
          false
      | Some value -> (
          match
            Perf_history.gate ~exclude_commit ~history ~quick ~metric ~direction
              ~factor value
          with
          | Perf_history.Pass { value; median; used } ->
              Printf.printf
                "gate: %-32s %10.3f vs median %10.3f of last %d (%s %gx) ok\n"
                metric value median used
                (match direction with
                | Perf_history.Higher_better -> ">="
                | Perf_history.Lower_better -> "<=")
                factor;
              true
          | Perf_history.Fail { value; median; used } ->
              Printf.printf
                "GATE FAIL: %s %.3f vs rolling median %.3f of last %d (%s \
                 %gx required)\n"
                metric value median used
                (match direction with
                | Perf_history.Higher_better -> ">="
                | Perf_history.Lower_better -> "<=")
                factor;
              false
          | Perf_history.Skip notice ->
              Printf.printf "gate: %s: skipped — %s\n" metric notice;
              true))
      gate_specs
  in
  List.for_all Fun.id verdicts
