(** [main.exe perf [--quick]]: the performance trajectory benchmark.

    Measures the fast-path layers (threaded-code interpreter, fused
    single-pass profiling, profile cache, domain pool) and writes the
    numbers to [BENCH_psaflow.json]:

    - interpreter throughput on the heaviest benchmark, before (slot-IR
      tree walker, {!Minic_interp.Eval.run_ir}) and after (threaded
      code, {!Minic_interp.Eval.run_compiled}), checking the two produce
      bit-identical profiles;
    - the repeated-analysis path, cold (cache disabled, every analysis
      re-interprets) vs cached (all analyses project one fused run);
    - the uninformed 5-benchmark evaluation: cold (sequential, cache
      cleared), warm sequential, and warm pooled — checking that the
      Fig. 5 / Table I / Fig. 6 inputs are bit-identical across all
      three.  On a 1-core container the parallel speedup is ~1x by
      construction, so the observable pair is [cached_vs_uncached_flow];
      [cores] is recorded alongside both speedups.

    The engine metrics registry is reset after the micro-bench sections,
    so the report's "engine" section (notably [interp_runs]) covers
    exactly the three flow-evaluation legs: the cold leg performs every
    interpreter execution (one fused run per (benchmark, workload point,
    focus) request), the warm legs hit the cache.

    [--quick] shrinks the repetition counts for CI smoke runs. *)

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (now () -. t0, r)

let repeat n f =
  for _ = 1 to n do
    ignore (f ())
  done

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

(* One round of the flow's dynamic analyses on a prepared benchmark:
   hotspot + trip counts on the full program, data in/out + alias +
   features on the extracted kernel.  Uncached, every one of these
   re-interprets the program; cached, all five project two fused runs
   (bare and kernel-focused). *)
let analysis_round (p, ex_program, kernel) () =
  ignore (Analysis.Hotspot.detect p);
  ignore (Analysis.Trip_count.analyze p);
  ignore (Analysis.Data_inout.analyze ex_program ~kernel);
  ignore (Analysis.Alias.analyze ex_program ~kernel);
  ignore (Analysis.Features.analyze ex_program ~kernel)

let prepare (app : Benchmarks.Bench_app.t) =
  let p = Benchmarks.Bench_app.program app ~n:app.profile_n in
  let ex_program, kernel, _ = Psa.Std_flow.prepare_kernel p in
  (p, ex_program, kernel)

(* Fingerprint of everything Fig. 5, Table I and Fig. 6 read from an
   uninformed run: design identity, knobs, timing, feasibility and the
   LOC delta, printed with full float precision. *)
let outcome_fingerprint (app : Benchmarks.Bench_app.t)
    (outcome : Psa.Std_flow.outcome) =
  let reference = Benchmarks.Bench_app.reference app in
  let result_line (r : Devices.Simulate.result) =
    Printf.sprintf "%s|%s|%s|u%d|b%d|t%d|%.17g|%.17g|%b|%b|loc%+d" r.design.name
      (Codegen.Design.target_framework r.design.target)
      r.design.device_id r.design.unroll_factor r.design.blocksize
      r.design.num_threads r.seconds r.speedup r.feasible
      r.design.synthesizable
      (Codegen.Design.loc_delta ~reference r.design)
  in
  app.id ^ "\n" ^ String.concat "\n" (List.map result_line outcome.results)

(* The contexts are built (programs parsed) once and shared by the three
   flow legs: statement ids are allocated per parse, so re-parsing would
   give every leg textually identical but differently-keyed programs and
   the cache could never hit across legs. *)
let uninformed_all contexts () =
  List.map
    (fun ((app : Benchmarks.Bench_app.t), ctx) ->
      outcome_fingerprint app (Psa.Std_flow.run_uninformed ctx))
    contexts

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let json_out = "BENCH_psaflow.json"

let run ~quick () =
  let reps = if quick then 2 else 5 in
  (* The stage-memo hierarchy would serve parses, features and DSE
     sweeps from cache across the repeated legs below, turning the
     deliberately *cold* measurements (cold flow cost, exhaustive
     sweep calls, cache speedup baselines) into warm ones and breaking
     their comparability with the recorded history.  The profile cache
     is exempt (its cold/warm pair is measured explicitly); the memo
     win itself is measured by the svc-load variants leg.  *)
  Flow_memo.set_globally_enabled false;
  Fun.protect ~finally:(fun () -> Flow_memo.set_globally_enabled true)
  @@ fun () ->
  Flow_obs.Metrics.reset Flow_obs.Metrics.global;
  let cores = Domain.recommended_domain_count () in
  Printf.printf "== psaflow perf (%s, %d cores recommended) ==\n%!"
    (if quick then "quick" else "full")
    cores;

  (* -- interpreter throughput: walker vs threaded vs optimized ------ *)
  (* --quick runs every leg below — including the per-pass optimizer
     identity checks — with fewer timing repetitions, never skipping a
     section: a partial rerun must overwrite every BENCH field. *)
  (* best-of-N: the lowered engines finish nbody in ~1.5 ms, so the
     full run needs enough repetitions to shake scheduler noise on a
     shared 1-core container *)
  let interp_reps = if quick then 2 else 9 in
  let best f =
    let r = ref (time f) in
    for _ = 2 to interp_reps do
      let s, v = time f in
      if s < fst !r then r := (s, v)
    done;
    !r
  in
  let heavy =
    List.nth Benchmarks.Registry.all 1 (* nbody: float-heavy kernel *)
  in
  let heavy_p = Benchmarks.Bench_app.program heavy ~n:heavy.profile_n in
  let heavy_ir = Minic_interp.Resolve.compile heavy_p in
  (* the production path ([Eval.compile] = resolve + optimize + thread);
     compiled first so the published opt_* pass counters are its own *)
  let compiled = Minic_interp.Eval.compile heavy_p in
  let opt_counters =
    List.map
      (fun name ->
        (name, Flow_obs.Metrics.counter_value Flow_obs.Metrics.global name))
      [
        "opt_consts_folded";
        "opt_ops_strength_reduced";
        "opt_slots_eliminated";
        "opt_exprs_hoisted";
        "opt_kernels_specialized";
      ]
  in
  let unoptimized = Minic_interp.Eval.compile_resolved heavy_ir in
  let before_s, before_run = best (fun () -> Minic_interp.Eval.run_ir heavy_ir) in
  let unopt_s, unopt_run =
    best (fun () -> Minic_interp.Eval.run_threaded unoptimized)
  in
  let after_s, after_run =
    best (fun () -> Minic_interp.Eval.run_threaded compiled)
  in
  (* the bytecode VM on the same optimized IR — the production engine
     unless PSAFLOW_NO_VM selects the threaded closures above *)
  let vm_s, vm_run = best (fun () -> Minic_interp.Eval.run_vm compiled) in
  let vm_counters =
    List.map
      (fun name ->
        (name, Flow_obs.Metrics.counter_value Flow_obs.Metrics.global name))
      [
        "vm_kernels";
        "vm_kernels_fused";
        "vm_kernels_shardable";
        "vm_kernel_ops_before";
        "vm_kernel_ops_after";
        "vm_kernel_lits";
        "vm_kernel_prefetch";
      ]
  in
  (* everything a profile consumer can observe, as a comparable value *)
  let fingerprint (r : Minic_interp.Eval.run) =
    let p = r.profile in
    ( (p.cycles, p.loads, p.stores, p.flops, p.int_ops, p.sfu_ops),
      (p.bytes_read, p.bytes_written),
      r.output,
      r.return_value )
  in
  let walker_fp = fingerprint before_run in
  (* per-pass bit-identity legs: each optimizer pass alone, then all
     composed, against the reference walker on the raw slot IR *)
  let no_p = Minic_interp.Opt.no_passes in
  let pass_legs =
    [
      ("fold", { no_p with Minic_interp.Opt.fold = true });
      ("strength", { no_p with Minic_interp.Opt.strength = true });
      ("dead", { no_p with Minic_interp.Opt.dead = true });
      ("hoist", { no_p with Minic_interp.Opt.hoist = true });
      ("specialize", { no_p with Minic_interp.Opt.specialize = true });
      ("composed", Minic_interp.Opt.all_passes);
    ]
  in
  let pass_identical =
    List.map
      (fun (name, config) ->
        let r =
          Minic_interp.Eval.run_compiled
            (Minic_interp.Eval.compile_resolved
               (Minic_interp.Opt.optimize ~config heavy_ir))
        in
        (name, fingerprint r = walker_fp))
      pass_legs
  in
  let threaded_identical =
    fingerprint unopt_run = walker_fp
    && fingerprint after_run = walker_fp
    && fingerprint vm_run = walker_fp
    && List.for_all snd pass_identical
  in
  let mcycles = after_run.profile.cycles /. 1e6 in
  let before_rate = mcycles /. before_s
  and unopt_rate = mcycles /. unopt_s
  and after_rate = mcycles /. after_s
  and vm_rate = mcycles /. vm_s in
  let bulk_mcycles =
    match
      Flow_obs.Metrics.histogram_summary Flow_obs.Metrics.global
        "interp_bulk_cycles"
    with
    | Some s -> s.Flow_obs.Metrics.s_max /. 1e6
    | None -> 0.0
  in
  Printf.printf
    "interp   %-12s ir-walker %8.4f s (%.1f Mcycles/s)   threaded %8.4f s \
     (%.1f Mcycles/s)   optimized %8.4f s (%.1f Mcycles/s)   bytecode %8.4f s \
     (%.1f Mcycles/s)   speedup %.1fx   outputs identical: %b\n%!"
    heavy.id before_s before_rate unopt_s unopt_rate after_s after_rate vm_s
    vm_rate (before_s /. vm_s) threaded_identical;
  Printf.printf "         passes: %s   bulk %.1f of %.1f Mcycles\n%!"
    (String.concat "  "
       (List.map
          (fun (n, ok) -> Printf.sprintf "%s=%s" n (if ok then "ok" else "DIVERGES"))
          pass_identical))
    bulk_mcycles mcycles;
  if not threaded_identical then
    prerr_endline "ERROR: an engine's profile diverges from the IR walker!";

  (* -- domain-parallel loop execution ------------------------------- *)
  (* A purpose-built data-parallel triad (y[i] = y[i] + a*x[i]) whose
     fused kernel passes the VM's shardability checks; the same compiled
     program runs with 1, 2 and 4 worker domains and every observable
     must be bit-identical (the accounting is closed-form on the calling
     domain; iterations own disjoint elements). *)
  let triad_n = 200_000 and triad_rounds = 50 in
  let triad_p =
    Minic.Parser.parse_program
      (Printf.sprintf
         {|
int main() {
  int n = %d;
  double x[n];
  double y[n];
  for (int i = 0; i < n; i++) {
    x[i] = rand01();
    y[i] = rand01();
  }
  double a = 1.5;
  for (int r = 0; r < %d; r++) {
    for (int i = 0; i < n; i++) {
      y[i] = y[i] + a * x[i];
    }
  }
  print_float(y[12345]);
  return 0;
}
|}
         triad_n triad_rounds)
  in
  let triad_c = Minic_interp.Eval.compile triad_p in
  if cores <= 1 then
    prerr_endline
      "WARNING: 1 recommended domain; parallel legs still execute with \
       2/4 worker domains but cannot show wall-clock speedup";
  let saved_jobs = !Minic_interp.Eval.vm_jobs_override in
  let saved_shard_min = !Minic_interp.Eval.vm_shard_min in
  Minic_interp.Eval.vm_shard_min := 4096;
  let parallel_legs =
    List.map
      (fun domains ->
        Minic_interp.Eval.vm_jobs_override := Some domains;
        let s, r = best (fun () -> Minic_interp.Eval.run_vm triad_c) in
        (domains, s, r))
      [ 1; 2; 4 ]
  in
  Minic_interp.Eval.vm_jobs_override := saved_jobs;
  Minic_interp.Eval.vm_shard_min := saved_shard_min;
  let triad_mcycles =
    match parallel_legs with
    | (_, _, r) :: _ -> r.Minic_interp.Eval.profile.cycles /. 1e6
    | [] -> 0.0
  in
  let parallel_identical =
    match parallel_legs with
    | (_, _, r1) :: rest ->
        List.for_all (fun (_, _, r) -> fingerprint r = fingerprint r1) rest
    | [] -> false
  in
  let sharded_kernels =
    Flow_obs.Metrics.counter_value Flow_obs.Metrics.global "vm_sharded_kernels"
  in
  Printf.printf "parallel triad (n=%d, %d rounds)  %s   sharded kernels %d   \
                 outputs identical: %b\n%!"
    triad_n triad_rounds
    (String.concat "   "
       (List.map
          (fun (d, s, _) ->
            Printf.sprintf "%d-domain %8.4f s (%.1f Mcycles/s)" d s
              (triad_mcycles /. s))
          parallel_legs))
    sharded_kernels parallel_identical;
  if not parallel_identical then
    prerr_endline "ERROR: domain-sharded outputs diverge across domain counts!";
  (* parallel efficiency per leg: (t_1dom / t_Ndom) / N.  Legs with more
     domains than cores oversubscribe the CPU and land below 1/N — a
     real, expected slowdown on small containers that the report records
     honestly rather than leaving unexplained. *)
  let triad_t1 =
    match parallel_legs with (_, s, _) :: _ -> s | [] -> 0.0
  in
  let triad_efficiency d s =
    if s > 0.0 && d > 0 then triad_t1 /. s /. float_of_int d else 0.0
  in
  let oversubscribed =
    List.exists (fun (d, _, _) -> d > cores) parallel_legs
  in
  if oversubscribed then
    Printf.eprintf
      "note: triad legs running more domains than the %d recommended core(s) \
       oversubscribe the CPU; parallel_efficiency < 1/domains is expected, \
       not an engine regression\n%!"
      cores;

  (* -- repeated-analysis path: cold vs cached ---------------------- *)
  let prepared = prepare heavy in
  Minic_interp.Profile_cache.set_enabled false;
  let cold_s, () = time (fun () -> repeat reps (analysis_round prepared)) in
  Minic_interp.Profile_cache.set_enabled true;
  Minic_interp.Profile_cache.clear ();
  Minic_interp.Profile_cache.reset_stats ();
  let warm_s, () = time (fun () -> repeat reps (analysis_round prepared)) in
  let cstats = Minic_interp.Profile_cache.stats () in
  let hits, misses = (cstats.hits, cstats.misses) in
  let cache_speedup = cold_s /. warm_s in
  Printf.printf
    "analyses %-12s cold %.4f s   cached %.4f s   speedup %.1fx   (%d hits, \
     %d misses, %d evictions)\n%!"
    heavy.id cold_s warm_s cache_speedup hits misses cstats.evictions;

  (* -- uninformed 5-benchmark evaluation --------------------------- *)
  (* Fresh registry + cache from here on: the report's "engine" section
     covers exactly the three flow legs, so [engine.interp_runs] is the
     per-cold-flow interpreter execution count the ISSUE bounds. *)
  Flow_obs.Metrics.reset Flow_obs.Metrics.global;
  Minic_interp.Profile_cache.clear ();
  Minic_interp.Profile_cache.reset_stats ();
  let contexts =
    List.map
      (fun (app : Benchmarks.Bench_app.t) ->
        (app, Benchmarks.Bench_app.context app))
      Benchmarks.Registry.all
  in
  let saved_override = !Dse.Pool.override in
  (* cold: sequential, cache enabled but empty — every fused request is
     interpreted exactly once, inside the timed region *)
  Dse.Pool.override := Some 1;
  let cold_flow_s, cold_fp = time (uninformed_all contexts) in
  (* warm sequential: same work, all fused requests hit the cache — the
     cached-vs-uncached pair observable regardless of core count *)
  let warm_seq_s, warm_seq_fp = time (uninformed_all contexts) in
  Dse.Pool.override := saved_override;
  let jobs = Dse.Pool.jobs () in
  (* warm parallel: the pooled path the service uses *)
  let warm_par_s, warm_par_fp = time (uninformed_all contexts) in
  let identical = cold_fp = warm_seq_fp && warm_seq_fp = warm_par_fp in
  let cached_speedup = cold_flow_s /. warm_seq_s in
  let flow_speedup = cold_flow_s /. warm_par_s in
  let fstats = Minic_interp.Profile_cache.stats () in
  Printf.printf
    "flow     5 benchmarks  cold+sequential %.4f s   cached+sequential %.4f s \
     (%.1fx)   cached+%d-job %.4f s (%.1fx, %d cores)   outputs identical: %b\n%!"
    cold_flow_s warm_seq_s cached_speedup jobs warm_par_s flow_speedup cores
    identical;
  if not identical then
    prerr_endline "ERROR: parallel/cached outputs diverge from sequential!";

  (* -- surrogate-guided DSE vs exhaustive -------------------------- *)
  (* Three more flow legs over the same prepared benchmarks: exhaustive
     (surrogate disabled), guided from a cold model store (the sweeps
     degenerate to exhaustive and train), and guided warm (the steady
     state a long-lived daemon reaches, where only the surrogate-ranked
     top-k receive fresh analytic-model calls).  The whole outcome set —
     DSE winners included — must be bit-identical across all three, and
     the warm leg must cut analytic-model calls by >= 10x. *)
  let counter name =
    Flow_obs.Metrics.counter_value Flow_obs.Metrics.global name
  in
  let dse_leg enabled =
    Flow_surrogate.Surrogate.set_enabled (Some enabled);
    let calls0 = counter "dse_simulate_calls"
    and preds0 = counter "surrogate_predictions"
    and falls0 = counter "surrogate_fallbacks"
    and hits0 = counter "surrogate_hit_topk" in
    let s, fp = time (uninformed_all contexts) in
    ( s,
      fp,
      counter "dse_simulate_calls" - calls0,
      counter "surrogate_predictions" - preds0,
      counter "surrogate_fallbacks" - falls0,
      counter "surrogate_hit_topk" - hits0 )
  in
  let ex_dse_s, ex_dse_fp, ex_calls, _, _, _ = dse_leg false in
  Flow_surrogate.Surrogate.reset ();
  let cold_dse_s, cold_dse_fp, cold_calls, cold_preds, cold_falls, _ =
    dse_leg true
  in
  let warm_dse_s, warm_dse_fp, warm_calls, warm_preds, warm_falls, warm_hits =
    dse_leg true
  in
  Flow_surrogate.Surrogate.set_enabled None;
  let dse_topk = Flow_surrogate.Surrogate.topk () in
  let dse_identical = ex_dse_fp = cold_dse_fp && cold_dse_fp = warm_dse_fp in
  let dse_reduction =
    float_of_int ex_calls /. float_of_int (max 1 warm_calls)
  in
  Printf.printf
    "dse      5 benchmarks  exhaustive %d calls (%.4f s)   guided cold %d \
     calls (%.4f s)   guided warm %d calls (%.4f s, %.1fx fewer, top-%d)   \
     outputs identical: %b\n%!"
    ex_calls ex_dse_s cold_calls cold_dse_s warm_calls warm_dse_s dse_reduction
    dse_topk dse_identical;
  if not dse_identical then
    prerr_endline "ERROR: guided DSE outcomes diverge from exhaustive!";

  (* -- report ------------------------------------------------------ *)
  let sections =
    let open Flow_service.Json in
    [
        ("bench", String "psaflow-perf");
        ("quick", Bool quick);
        ("cores", Int cores);
        ("jobs", Int jobs);
        ( "interp",
          Obj
            [
              ("benchmark", String heavy.id);
              ("virtual_mcycles", Float mcycles);
              ( "ir_walker",
                Obj
                  [
                    ("run_s", Float before_s);
                    ("mcycles_per_s", Float before_rate);
                  ] );
              (* production path: slot IR optimized, then threaded *)
              ( "threaded",
                Obj
                  [
                    ("run_s", Float after_s);
                    ("mcycles_per_s", Float after_rate);
                  ] );
              ( "optimized",
                Obj
                  ([
                     ("unoptimized_run_s", Float unopt_s);
                     ("unoptimized_mcycles_per_s", Float unopt_rate);
                     ("run_s", Float after_s);
                     ("mcycles_per_s", Float after_rate);
                     ("speedup_vs_unoptimized", Float (unopt_s /. after_s));
                     ("bulk_mcycles_charged", Float bulk_mcycles);
                     ( "passes_identical",
                       Obj
                         (List.map
                            (fun (n, ok) -> (n, Bool ok))
                            pass_identical) );
                   ]
                  @ List.map (fun (n, v) -> (n, Int v)) opt_counters) );
              (* the register-bytecode VM (production engine): same
                 optimized IR, flat instruction arrays + fused kernel
                 micro-ops *)
              ( "bytecode",
                Obj
                  ([
                     ("run_s", Float vm_s);
                     ("mcycles_per_s", Float vm_rate);
                     ("speedup_vs_threaded", Float (after_s /. vm_s));
                   ]
                  @ List.map (fun (n, v) -> (n, Int v)) vm_counters) );
              ("speedup", Float (before_s /. after_s));
              ("speedup_total", Float (before_s /. vm_s));
              ("outputs_identical", Bool threaded_identical);
            ] );
        ( "parallel",
          Obj
            ([
               ("benchmark", String "triad");
               ("n", Int triad_n);
               ("rounds", Int triad_rounds);
               ("virtual_mcycles", Float triad_mcycles);
               ("cores", Int cores);
               ("sharded_kernels", Int sharded_kernels);
               ( "legs",
                 List
                   (List.map
                      (fun (d, s, _) ->
                        Obj
                          [
                            ("domains", Int d);
                            ("run_s", Float s);
                            ("mcycles_per_s", Float (triad_mcycles /. s));
                            ( "parallel_efficiency",
                              Float (triad_efficiency d s) );
                          ])
                      parallel_legs) );
             ]
            @ (if oversubscribed then
                 [
                   ( "note",
                     String
                       (Printf.sprintf
                          "legs with domains > %d core(s) oversubscribe the \
                           CPU; parallel_efficiency below 1/domains is \
                           expected"
                          cores) );
                 ]
               else [])
            @ [ ("outputs_identical", Bool parallel_identical) ]) );
        ( "cache",
          Obj
            [
              ("benchmark", String heavy.id);
              ("rounds", Int reps);
              ("cold_s", Float cold_s);
              ("cached_s", Float warm_s);
              ("speedup", Float cache_speedup);
              ("hits", Int hits);
              ("misses", Int misses);
              ("evictions", Int cstats.evictions);
            ] );
        ( "flow",
          Obj
            [
              ("benchmarks", Int (List.length Benchmarks.Registry.all));
              ("cores", Int cores);
              ("jobs", Int jobs);
              ("sequential_uncached_s", Float cold_flow_s);
              ("cached_sequential_s", Float warm_seq_s);
              ("parallel_cached_s", Float warm_par_s);
              (* parallel speedup is bounded by [cores]; on a 1-core
                 container it is ~1x by construction *)
              ("speedup", Float flow_speedup);
              ( "cached_vs_uncached_flow",
                Obj
                  [
                    ("uncached_s", Float cold_flow_s);
                    ("cached_s", Float warm_seq_s);
                    ("speedup", Float cached_speedup);
                  ] );
              ("cache_hits", Int fstats.hits);
              ("cache_misses", Int fstats.misses);
              ("outputs_identical", Bool identical);
            ] );
        ( "dse",
          Obj
            [
              ("benchmarks", Int (List.length Benchmarks.Registry.all));
              ("topk", Int dse_topk);
              ( "exhaustive",
                Obj
                  [
                    ("simulate_calls", Int ex_calls);
                    ("wall_s", Float ex_dse_s);
                  ] );
              ( "guided_cold",
                Obj
                  [
                    ("simulate_calls", Int cold_calls);
                    ("wall_s", Float cold_dse_s);
                    ("predictions", Int cold_preds);
                    ("fallbacks", Int cold_falls);
                  ] );
              ( "guided_warm",
                Obj
                  [
                    ("simulate_calls", Int warm_calls);
                    ("wall_s", Float warm_dse_s);
                    ("predictions", Int warm_preds);
                    ("fallbacks", Int warm_falls);
                    ("hit_topk", Int warm_hits);
                  ] );
              ("simulate_call_reduction", Float dse_reduction);
              ("outputs_identical", Bool dse_identical);
            ] );
        (* the engine registry as reset before the flow legs:
           [interp_runs] is the cold flow's interpreter execution count
           (the warm legs add cache hits only) *)
        ("engine", Flow_obs.Metrics.to_json Flow_obs.Metrics.global);
      ]
  in
  (* merge, don't overwrite: [bench svc-load] owns the "service" section
     of the same file *)
  Report_file.update ~path:json_out sections;
  Printf.printf "wrote %s\n%!" json_out;
  if
    not
      (identical && threaded_identical && parallel_identical && dse_identical)
  then exit 1
