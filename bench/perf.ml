(** [main.exe perf [--quick]]: the performance trajectory benchmark.

    Measures the three fast-path layers introduced by the slot-compiled
    interpreter / profile cache / domain pool work and writes the
    numbers to [BENCH_psaflow.json]:

    - interpreter throughput (one profiling run of the heaviest
      benchmark, modelled virtual cycles per wall second);
    - the repeated-analysis path, cold (cache disabled, every analysis
      re-interprets) vs cached (all analyses share one instrumented
      run);
    - the uninformed 5-benchmark evaluation, sequential and uncached vs
      pooled and cached, checking that the Fig. 5 / Table I / Fig. 6
      inputs are bit-identical between the two.

    [--quick] shrinks the repetition counts for CI smoke runs. *)

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (now () -. t0, r)

let repeat n f =
  for _ = 1 to n do
    ignore (f ())
  done

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

(* One round of the flow's dynamic analyses on a prepared benchmark:
   hotspot + trip counts on the full program, data in/out + alias +
   features on the extracted kernel.  Uncached, every one of these
   re-interprets the program. *)
let analysis_round (p, ex_program, kernel) () =
  ignore (Analysis.Hotspot.detect p);
  ignore (Analysis.Trip_count.analyze p);
  ignore (Analysis.Data_inout.analyze ex_program ~kernel);
  ignore (Analysis.Alias.analyze ex_program ~kernel);
  ignore (Analysis.Features.analyze ex_program ~kernel)

let prepare (app : Benchmarks.Bench_app.t) =
  let p = Benchmarks.Bench_app.program app ~n:app.profile_n in
  let ex_program, kernel, _ = Psa.Std_flow.prepare_kernel p in
  (p, ex_program, kernel)

(* Fingerprint of everything Fig. 5, Table I and Fig. 6 read from an
   uninformed run: design identity, knobs, timing, feasibility and the
   LOC delta, printed with full float precision. *)
let outcome_fingerprint (app : Benchmarks.Bench_app.t)
    (outcome : Psa.Std_flow.outcome) =
  let reference = Benchmarks.Bench_app.reference app in
  let result_line (r : Devices.Simulate.result) =
    Printf.sprintf "%s|%s|%s|u%d|b%d|t%d|%.17g|%.17g|%b|%b|loc%+d" r.design.name
      (Codegen.Design.target_framework r.design.target)
      r.design.device_id r.design.unroll_factor r.design.blocksize
      r.design.num_threads r.seconds r.speedup r.feasible
      r.design.synthesizable
      (Codegen.Design.loc_delta ~reference r.design)
  in
  app.id ^ "\n" ^ String.concat "\n" (List.map result_line outcome.results)

let uninformed_all () =
  List.map
    (fun (app : Benchmarks.Bench_app.t) ->
      outcome_fingerprint app
        (Psa.Std_flow.run_uninformed (Benchmarks.Bench_app.context app)))
    Benchmarks.Registry.all

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let json_out = "BENCH_psaflow.json"

let run ~quick () =
  let reps = if quick then 2 else 5 in
  (* a clean engine registry: the report's "engine" section then covers
     exactly this perf run *)
  Flow_obs.Metrics.reset Flow_obs.Metrics.global;
  Printf.printf "== psaflow perf (%s, %d cores recommended) ==\n%!"
    (if quick then "quick" else "full")
    (Domain.recommended_domain_count ());

  (* -- interpreter throughput ------------------------------------- *)
  let heavy =
    List.nth Benchmarks.Registry.all 1 (* nbody: float-heavy kernel *)
  in
  let heavy_p = Benchmarks.Bench_app.program heavy ~n:heavy.profile_n in
  let compiled = Minic_interp.Eval.compile heavy_p in
  let interp_s, interp_run =
    time (fun () -> Minic_interp.Eval.run_compiled compiled)
  in
  let mcycles = interp_run.profile.cycles /. 1e6 in
  Printf.printf "interp   %-12s %8.4f s  (%.1f Mcycles, %.1f Mcycles/s)\n%!"
    heavy.id interp_s mcycles
    (mcycles /. interp_s);

  (* -- repeated-analysis path: cold vs cached ---------------------- *)
  let prepared = prepare heavy in
  Minic_interp.Profile_cache.set_enabled false;
  let cold_s, () = time (fun () -> repeat reps (analysis_round prepared)) in
  Minic_interp.Profile_cache.set_enabled true;
  Minic_interp.Profile_cache.clear ();
  Minic_interp.Profile_cache.reset_stats ();
  let warm_s, () = time (fun () -> repeat reps (analysis_round prepared)) in
  let cstats = Minic_interp.Profile_cache.stats () in
  let hits, misses = (cstats.hits, cstats.misses) in
  let cache_speedup = cold_s /. warm_s in
  Printf.printf
    "analyses %-12s cold %.4f s   cached %.4f s   speedup %.1fx   (%d hits, \
     %d misses, %d evictions)\n%!"
    heavy.id cold_s warm_s cache_speedup hits misses cstats.evictions;

  (* -- uninformed 5-benchmark evaluation --------------------------- *)
  let saved_override = !Dse.Pool.override in
  Minic_interp.Profile_cache.set_enabled false;
  Dse.Pool.override := Some 1;
  let seq_s, seq_fp = time uninformed_all in
  Minic_interp.Profile_cache.set_enabled true;
  Minic_interp.Profile_cache.clear ();
  Dse.Pool.override := saved_override;
  let jobs = Dse.Pool.jobs () in
  let par_s, par_fp = time uninformed_all in
  let identical = seq_fp = par_fp in
  let flow_speedup = seq_s /. par_s in
  Printf.printf
    "flow     5 benchmarks  sequential+uncached %.4f s   %d-job+cached %.4f \
     s   speedup %.1fx   outputs identical: %b\n%!"
    seq_s jobs par_s flow_speedup identical;
  if not identical then
    prerr_endline "ERROR: parallel/cached outputs diverge from sequential!";

  (* -- report ------------------------------------------------------ *)
  let json =
    let open Flow_service.Json in
    Obj
      [
        ("bench", String "psaflow-perf");
        ("quick", Bool quick);
        ("cores", Int (Domain.recommended_domain_count ()));
        ("jobs", Int jobs);
        ( "interp",
          Obj
            [
              ("benchmark", String heavy.id);
              ("run_s", Float interp_s);
              ("virtual_mcycles", Float mcycles);
              ("mcycles_per_s", Float (mcycles /. interp_s));
            ] );
        ( "cache",
          Obj
            [
              ("benchmark", String heavy.id);
              ("rounds", Int reps);
              ("cold_s", Float cold_s);
              ("cached_s", Float warm_s);
              ("speedup", Float cache_speedup);
              ("hits", Int hits);
              ("misses", Int misses);
              ("evictions", Int cstats.evictions);
            ] );
        ( "flow",
          Obj
            [
              ("benchmarks", Int (List.length Benchmarks.Registry.all));
              ("sequential_uncached_s", Float seq_s);
              ("parallel_cached_s", Float par_s);
              ("speedup", Float flow_speedup);
              ("outputs_identical", Bool identical);
            ] );
        (* the process-wide engine registry: profile-cache hit/miss/
           eviction, pool utilisation, interpreter cycles, DSE candidate
           counts accrued over this whole perf run *)
        ("engine", Flow_service.Metrics.to_json Flow_obs.Metrics.global);
      ]
  in
  let oc = open_out json_out in
  output_string oc (Flow_service.Json.to_string_pretty json);
  close_out oc;
  Printf.printf "wrote %s\n%!" json_out;
  if not identical then exit 1
