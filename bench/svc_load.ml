(** [bench svc-load]: stand up a live daemon in-process, replay a
    deterministic {!Flow_load.Workload} mix against it through real
    sockets, and record throughput and latency percentiles into the
    [service] section of [BENCH_psaflow.json].

    Two measurements are published:

    - the replay itself: >= 20k mixed submissions (hot duplicates, cold
      misses, MiniC-error poison, queue-full storms) through
      [connections] concurrent clients, with full-array p50/p90/p99 and
      a byte-identity check of sampled results against direct
      {!Flow_exec} execution — the harness {e fails} (exit 1) if any
      sampled daemon result differs from the direct bytes;
    - a store microbenchmark: hot-leg [Store.find] throughput of the
      digest-sharded store vs the single-mutex (shards=1) configuration
      under domain concurrency, recorded with the [cores] count so a
      1-core container's numbers read as what they are. *)

module Json = Flow_service.Json
module Protocol = Flow_service.Protocol
module Server = Flow_service.Server
module Client = Flow_service.Client
module Store = Flow_service.Store

let json_out = "BENCH_psaflow.json"

(* ------------------------------------------------------------------ *)
(* Store hot-leg microbenchmark: sharded vs single mutex               *)
(* ------------------------------------------------------------------ *)

let store_hot_leg ~shards ~domains ~keys ~rounds =
  let store = Store.create ~shards ~capacity:(Array.length keys) () in
  Array.iteri (fun i k -> Store.add store k i) keys;
  let t0 = Unix.gettimeofday () in
  let worker d =
    let n = Array.length keys in
    (* every domain walks the whole key set from its own offset, so all
       shards stay hot and domains collide on locks realistically *)
    for r = 0 to rounds - 1 do
      for i = 0 to n - 1 do
        ignore (Store.find store keys.((i + (d * 17) + r) mod n))
      done
    done
  in
  let ds = Array.init (domains - 1) (fun d -> Domain.spawn (fun () -> worker (d + 1))) in
  worker 0;
  Array.iter Domain.join ds;
  let wall = Unix.gettimeofday () -. t0 in
  let ops = domains * rounds * Array.length keys in
  (wall, float_of_int ops /. wall)

let store_bench ~quick ~cores : Json.t =
  let keys =
    (* hex digests, like real store keys, so sharding spreads them *)
    Array.init 512 (fun i -> Digest.to_hex (Digest.string (string_of_int i)))
  in
  let domains = max 2 (min 4 cores) in
  let rounds = if quick then 50 else 400 in
  let single_s, single_rate = store_hot_leg ~shards:1 ~domains ~keys ~rounds in
  let sharded_s, sharded_rate = store_hot_leg ~shards:8 ~domains ~keys ~rounds in
  Printf.printf
    "store hot leg: %d domains, %d keys x %d rounds: single-mutex %.0f ops/s, \
     8 shards %.0f ops/s (%.2fx)\n\
     %!"
    domains (Array.length keys) rounds single_rate sharded_rate
    (single_s /. sharded_s);
  Json.Obj
    [
      ("domains", Json.Int domains);
      ("cores", Json.Int cores);
      ("keys", Json.Int (Array.length keys));
      ("rounds", Json.Int rounds);
      ( "single_mutex",
        Json.Obj
          [ ("wall_s", Json.Float single_s); ("finds_per_s", Json.Float single_rate) ] );
      ( "sharded",
        Json.Obj
          [
            ("shards", Json.Int 8);
            ("wall_s", Json.Float sharded_s);
            ("finds_per_s", Json.Float sharded_rate);
          ] );
      ("speedup", Json.Float (single_s /. sharded_s));
    ]

(* ------------------------------------------------------------------ *)
(* Daemon replay                                                       *)
(* ------------------------------------------------------------------ *)

let with_daemon (config : Server.config) f =
  let path = Filename.temp_file "psaflow-load" ".sock" in
  Sys.remove path;
  let addr = Protocol.Unix_path path in
  let server = Thread.create (fun () -> Server.serve ~config addr) () in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait () =
    match Client.connect addr with
    | c -> Client.close c
    | exception Client.Client_error _ ->
        if Unix.gettimeofday () > deadline then
          failwith "svc-load: daemon did not come up";
        Thread.delay 0.01;
        wait ()
  in
  wait ();
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Client.rpc addr Protocol.Shutdown) with _ -> ());
      Thread.join server)
    (fun () -> f addr)

(* ------------------------------------------------------------------ *)
(* Variants leg                                                        *)
(* ------------------------------------------------------------------ *)

(* [Report_file.update] replaces whole top-level sections and the
   classic mix owns "service" — so the variants leg merges its
   subsection into whatever "service" object is already on disk. *)
let service_with_variants variants : Json.t =
  match List.assoc_opt "service" (Report_file.read_sections json_out) with
  | Some (Json.Obj fields) ->
      Json.Obj
        (List.filter (fun (k, _) -> k <> "variants") fields
        @ [ ("variants", variants) ])
  | _ -> Json.Obj [ ("variants", variants) ]

let run_variants ~quick () =
  let cores = Domain.recommended_domain_count () in
  let sources = if quick then 6 else 12 in
  let per_source = if quick then 6 else 12 in
  let connections = if quick then 4 else 8 in
  let config = { (Server.default_config ()) with Server.store_capacity = 512 } in
  Printf.printf
    "== psaflow svc-load --mix variants (%s, %d cores recommended, %d \
     workers) ==\n\
     %!"
    (if quick then "quick" else "full")
    cores config.Server.workers;
  let o =
    with_daemon config (fun addr ->
        Flow_load.Runner.run_variants
          {
            Flow_load.Runner.v_addr = addr;
            v_connections = connections;
            v_seed = 42;
            v_sources = sources;
            v_per_source = per_source;
            v_sample_every = (if quick then 5 else 10);
          })
  in
  Printf.printf
    "variants: %d requests (%d cold, %d variant) in %.2f s: %.0f variant \
     req/s\n\
     cold full flow ms: mean %.2f  p50 %.2f  p99 %.2f\n\
     cold variant  ms: mean %.2f  p50 %.2f  p99 %.2f  (ratio %.3f)\n\
     memo: %.1f%% phase-B hit rate\n\
     %!"
    o.Flow_load.Runner.v_requests o.cold_n o.variant_n o.v_wall_s
    o.v_throughput_rps o.cold_mean_ms o.cold_p50_ms o.cold_p99_ms
    o.variant_mean_ms o.variant_p50_ms o.variant_p99_ms o.latency_ratio
    (100.0 *. o.memo_hit_rate);
  List.iter
    (fun s ->
      Printf.printf "  %-18s %6d hits %6d misses\n" s.Flow_load.Runner.stage
        s.s_hits s.s_misses)
    o.memo_stages;
  Printf.printf
    "dispositions: %d fresh, %d unexpected; %d errors\n\
     identity vs memo-off direct execution: %d sampled -> %s\n\
     %!"
    o.v_fresh o.v_unexpected_dispositions o.v_errors o.v_identity_checked
    (if o.v_identity_ok then "byte-identical" else "MISMATCH");
  let variants =
    Json.Obj
      [
        ("quick", Json.Bool quick);
        ("cores", Json.Int cores);
        ("connections", Json.Int connections);
        ("sources", Json.Int sources);
        ("per_source", Json.Int per_source);
        ("seed", Json.Int 42);
        ("requests", Json.Int o.v_requests);
        ("wall_s", Json.Float o.v_wall_s);
        ("throughput_rps", Json.Float o.v_throughput_rps);
        ("cold_n", Json.Int o.cold_n);
        ("cold_mean_ms", Json.Float o.cold_mean_ms);
        ("cold_p50_ms", Json.Float o.cold_p50_ms);
        ("cold_p99_ms", Json.Float o.cold_p99_ms);
        ("variant_n", Json.Int o.variant_n);
        ("variant_mean_ms", Json.Float o.variant_mean_ms);
        ("variant_p50_ms", Json.Float o.variant_p50_ms);
        ("variant_p99_ms", Json.Float o.variant_p99_ms);
        ("latency_ratio", Json.Float o.latency_ratio);
        ("memo_hit_rate", Json.Float o.memo_hit_rate);
        ( "memo_stages",
          Json.Obj
            (List.map
               (fun s ->
                 ( s.Flow_load.Runner.stage,
                   Json.Obj
                     [
                       ("hits", Json.Int s.Flow_load.Runner.s_hits);
                       ("misses", Json.Int s.s_misses);
                     ] ))
               o.memo_stages) );
        ("fresh", Json.Int o.v_fresh);
        ("unexpected_dispositions", Json.Int o.v_unexpected_dispositions);
        ("errors", Json.Int o.v_errors);
        ("identity_checked", Json.Int o.v_identity_checked);
        ("outputs_identical", Json.Bool o.v_identity_ok);
      ]
  in
  Report_file.update ~path:json_out
    [ ("service", service_with_variants variants) ];
  Printf.printf "wrote %s\n%!" json_out;
  if not o.v_identity_ok then exit 1;
  if o.v_errors > 0 || o.v_unexpected_dispositions > 0 then begin
    prerr_endline
      "ERROR: svc-load variants saw errors or non-fresh dispositions";
    exit 1
  end

let run ~quick () =
  let cores = Domain.recommended_domain_count () in
  (* 95% singletons + 5% storms of [storm_size] gives ~3.3 submissions
     per op: 6200 ops is a >= 20k-request replay *)
  let total_ops = if quick then 600 else 6_200 in
  let storm_size = 48 in
  let queue_capacity = 32 in
  let config =
    {
      (Server.default_config ()) with
      Server.queue_capacity;
      store_capacity = 512;
    }
  in
  Printf.printf
    "== psaflow svc-load (%s, %d cores recommended, %d workers) ==\n%!"
    (if quick then "quick" else "full")
    cores config.Server.workers;
  let outcome =
    with_daemon config (fun addr ->
        Flow_load.Runner.run
          {
            Flow_load.Runner.addr;
            connections = (if quick then 4 else 8);
            total_ops;
            seed = 42;
            storm_size;
            sample_every = 25;
          })
  in
  let o = outcome in
  Printf.printf
    "replayed %d ops (%d submissions) in %.2f s: %.0f req/s\n\
     latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n\
     dispositions: %d fresh, %d coalesced, %d cached\n\
     rejections: %d poison, %d queue_full, %d other\n\
     identity: %d sampled results vs direct Std_flow -> %s\n\
     %!"
    o.Flow_load.Runner.ops o.requests o.wall_s o.throughput_rps o.p50_ms
    o.p90_ms o.p99_ms o.max_ms o.fresh o.coalesced o.cached o.poison_rejected
    o.queue_full o.other_errors o.identity_checked
    (if o.identity_ok then "byte-identical" else "MISMATCH");
  let service =
    Json.Obj
      [
        ("quick", Json.Bool quick);
        ("cores", Json.Int cores);
        ("workers", Json.Int config.Server.workers);
        ("connections", Json.Int (if quick then 4 else 8));
        ("queue_capacity", Json.Int queue_capacity);
        ("storm_size", Json.Int storm_size);
        ("seed", Json.Int 42);
        ("ops", Json.Int o.ops);
        ("requests", Json.Int o.requests);
        ("wall_s", Json.Float o.wall_s);
        ("throughput_rps", Json.Float o.throughput_rps);
        ("p50_ms", Json.Float o.p50_ms);
        ("p90_ms", Json.Float o.p90_ms);
        ("p99_ms", Json.Float o.p99_ms);
        ("max_ms", Json.Float o.max_ms);
        ("fresh", Json.Int o.fresh);
        ("coalesced", Json.Int o.coalesced);
        ("cached", Json.Int o.cached);
        ("poison_rejected", Json.Int o.poison_rejected);
        ("queue_full", Json.Int o.queue_full);
        ("other_errors", Json.Int o.other_errors);
        ("identity_checked", Json.Int o.identity_checked);
        ("outputs_identical", Json.Bool o.identity_ok);
        ("store_hot_leg", store_bench ~quick ~cores);
      ]
  in
  (* keep a previously measured variants leg when re-running the
     classic mix (the two legs co-own the "service" section) *)
  let service =
    match
      ( service,
        List.assoc_opt "service" (Report_file.read_sections json_out) )
    with
    | Json.Obj fields, Some (Json.Obj old) -> (
        match List.assoc_opt "variants" old with
        | Some v -> Json.Obj (fields @ [ ("variants", v) ])
        | None -> service)
    | _ -> service
  in
  Report_file.update ~path:json_out [ ("service", service) ];
  Printf.printf "wrote %s\n%!" json_out;
  if not o.identity_ok then exit 1;
  if o.other_errors > 0 then begin
    prerr_endline "ERROR: svc-load saw unexpected errors";
    exit 1
  end
