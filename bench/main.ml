(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation section and reports paper-vs-measured side by side.

    - Fig. 5: hotspot speedups of all five generated designs per
      benchmark, plus the informed Auto-Selected result;
    - Table I: added lines of code per generated design;
    - Fig. 6: relative FPGA-vs-GPU cost across resource price ratios and
      the crossover points;
    - Table II: qualitative comparison of design approaches;
    - an ablation of the PSA strategy's X threshold;
    - bechamel micro-benchmarks (one [Test.make] per experiment, timing
      the regeneration of each table from the profiled features, plus
      toolchain micro-benchmarks).

    Usage: [main.exe] runs everything; [main.exe fig5|table1|fig6|table2|
    ablation|micro] runs one part.

    Perf-history plumbing (see [scripts/perf_gate.sh]):
    [main.exe history-append [--quick]] appends the current
    [BENCH_psaflow.json] numbers as one commit-keyed datapoint to
    [BENCH_history.jsonl]; [main.exe gate-history [--quick]] gates
    them against the rolling median of the recent comparable
    history (exit 1 on regression). *)

(* ------------------------------------------------------------------ *)
(* Data collection: one uninformed flow per benchmark                  *)
(* ------------------------------------------------------------------ *)

type collected = {
  app : Benchmarks.Bench_app.t;
  reference : Minic.Ast.program;
  features : Analysis.Features.t;  (** at evaluation scale *)
  results : Devices.Simulate.result list;  (** all five designs, timed *)
  decision : Psa.Strategy.explanation;  (** branch point A, informed *)
}

let collect_one (app : Benchmarks.Bench_app.t) : collected =
  let ctx = Benchmarks.Bench_app.context app in
  let outcome = Psa.Std_flow.run_uninformed ctx in
  let c0 =
    match outcome.contexts with
    | c :: _ -> c
    | [] -> failwith "flow produced no context"
  in
  {
    app;
    reference = ctx.Psa.Context.reference;
    features = Psa.Context.eval_features_exn c0;
    results = outcome.results;
    decision = Psa.Strategy.fig3_explain c0;
  }

let collected : collected list Lazy.t =
  lazy
    (Dse.Pool.map
       (fun (app : Benchmarks.Bench_app.t) ->
         Printf.eprintf "profiling %s...\n%!" app.id;
         collect_one app)
       Benchmarks.Registry.all)

let find_result (c : collected) name =
  List.find_opt
    (fun (r : Devices.Simulate.result) -> r.design.name = name)
    c.results

let speedup_of (c : collected) name =
  match find_result c name with
  | Some r when r.feasible -> Some r.speedup
  | _ -> None

let seconds_of (c : collected) name =
  match find_result c name with
  | Some r when r.feasible -> Some r.seconds
  | _ -> None

(** The Auto-Selected result: fastest design on the informed target. *)
let auto_selected (c : collected) : Devices.Simulate.result option =
  let target =
    match c.decision.decision with
    | Psa.Strategy.Cpu_path -> Some Codegen.Design.Cpu_openmp
    | Psa.Strategy.Gpu_path -> Some Codegen.Design.Gpu_hip
    | Psa.Strategy.Fpga_path -> Some Codegen.Design.Fpga_oneapi
    | Psa.Strategy.No_offload _ -> None
  in
  match target with
  | None -> None
  | Some t ->
      Psa.Report.best
        (List.filter
           (fun (r : Devices.Simulate.result) -> r.design.target = t)
           c.results)

(* ------------------------------------------------------------------ *)
(* Fig. 5                                                              *)
(* ------------------------------------------------------------------ *)

let opt_x = function Some v -> Printf.sprintf "%.1f" v | None -> "n/a"

let fig5_rows () =
  List.map
    (fun (c : collected) ->
      let auto = auto_selected c in
      ( c,
        [
          Option.map (fun (r : Devices.Simulate.result) -> r.speedup) auto;
          speedup_of c "omp_epyc7543";
          speedup_of c "hip_gtx1080ti";
          speedup_of c "hip_rtx2080ti";
          speedup_of c "oneapi_arria10";
          speedup_of c "oneapi_stratix10";
        ] ))
    (Lazy.force collected)

let print_fig5 () =
  print_endline "";
  print_endline
    "== Fig. 5: hotspot speedups vs single-thread CPU (measured | paper) ==";
  Printf.printf "%-13s %13s %13s %13s %13s %13s %13s\n" "benchmark" "Auto"
    "OMP" "HIP 1080Ti" "HIP 2080Ti" "oneAPI A10" "oneAPI S10";
  List.iter
    (fun ((c : collected), cells) ->
      let paper =
        List.find
          (fun (r : Paper_data.fig5_row) -> r.bench = c.app.id)
          Paper_data.fig5
      in
      let paper_auto =
        (* the paper's Auto bar equals the best bar of the winning family *)
        List.fold_left
          (fun acc v -> match v with Some x -> Float.max acc x | None -> acc)
          0.0
          [ paper.omp; paper.hip_1080; paper.hip_2080; paper.oneapi_a10;
            paper.oneapi_s10 ]
      in
      let cell measured paper =
        Printf.sprintf "%s|%s" (opt_x measured) (Paper_data.opt_str paper)
      in
      match cells with
      | [ auto; omp; g1; g2; a10; s10 ] ->
          Printf.printf "%-13s %13s %13s %13s %13s %13s %13s\n" c.app.id
            (cell auto (Some paper_auto))
            (cell omp paper.omp) (cell g1 paper.hip_1080)
            (cell g2 paper.hip_2080) (cell a10 paper.oneapi_a10)
            (cell s10 paper.oneapi_s10)
      | _ -> ())
    (fig5_rows ());
  (* the paper's headline claim: the informed strategy picks the winner *)
  print_endline "";
  List.iter
    (fun ((c : collected), _) ->
      let best = Psa.Report.best c.results in
      let auto = auto_selected c in
      let ok =
        match (best, auto) with
        | Some b, Some a -> b.design.target = a.design.target
        | _ -> false
      in
      Printf.printf "  %-13s informed strategy -> %-16s %s\n" c.app.id
        (Psa.Strategy.decision_to_string c.decision.decision)
        (if ok then "(= best target; matches the paper)"
         else "(MISMATCH with the best uninformed design!)"))
    (fig5_rows ())

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let table1_cells (c : collected) =
  let delta name =
    match find_result c name with
    | Some r when r.design.synthesizable ->
        Some (Codegen.Design.loc_delta_percent ~reference:c.reference r.design)
    | _ -> None
  in
  let omp = delta "omp_epyc7543" in
  let hip1 = delta "hip_gtx1080ti" in
  let hip2 = delta "hip_rtx2080ti" in
  let a10 = delta "oneapi_arria10" in
  let s10 = delta "oneapi_stratix10" in
  let total =
    match (omp, hip1, hip2, a10, s10) with
    | Some a, Some b, Some b', Some d, Some e -> Some (a +. b +. b' +. d +. e)
    | _ -> None
  in
  (omp, hip1, a10, s10, total)

let print_table1 () =
  print_endline "";
  print_endline
    "== Table I: added LOC per design, % of reference (measured | paper) ==";
  Printf.printf "%-13s %6s %14s %14s %14s %14s %16s\n" "benchmark" "ref" "OMP"
    "HIP" "oneAPI A10" "oneAPI S10" "total (5)";
  List.iter
    (fun (c : collected) ->
      let omp, hip, a10, s10, total = table1_cells c in
      let paper =
        List.find
          (fun (r : Paper_data.table1_row) -> r.t1_bench = c.app.id)
          Paper_data.table1
      in
      let cell m p =
        Printf.sprintf "%s|%s"
          (match m with Some v -> Printf.sprintf "+%.0f%%" v | None -> "n/a")
          (match p with Some v -> Printf.sprintf "+%.0f%%" v | None -> "n/a")
      in
      Printf.printf "%-13s %6d %14s %14s %14s %14s %16s\n" c.app.id
        (Minic.Loc_count.count_program c.reference)
        (cell omp paper.t1_omp) (cell hip paper.t1_hip)
        (cell a10 paper.t1_a10) (cell s10 paper.t1_s10)
        (cell total paper.t1_total))
    (Lazy.force collected)

(* ------------------------------------------------------------------ *)
(* Fig. 6                                                              *)
(* ------------------------------------------------------------------ *)

let fig6_apps = [ "adpredictor"; "bezier"; "kmeans" ]

let print_fig6 () =
  print_endline "";
  print_endline
    "== Fig. 6: relative cost, Stratix10 CPU+FPGA vs 2080 Ti CPU+GPU ==";
  print_endline
    "   (cost ratio = FPGA cost / GPU cost; < 1 means the FPGA platform is";
  print_endline "    more cost effective at that price ratio)";
  let ratios = [ 0.25; 1.0 /. 3.0; 0.5; 1.0; 2.0; 3.0; 4.0 ] in
  Printf.printf "%-13s" "FPGA$/GPU$:";
  List.iter (fun r -> Printf.printf "%9.2f" r) ratios;
  Printf.printf "%12s %s\n" "crossover" "(paper)";
  List.iter
    (fun id ->
      match
        List.find_opt (fun (c : collected) -> c.app.id = id) (Lazy.force collected)
      with
      | None -> ()
      | Some c -> (
          match
            (seconds_of c "oneapi_stratix10", seconds_of c "hip_rtx2080ti")
          with
          | Some t_f, Some t_g ->
              Printf.printf "%-13s" id;
              List.iter
                (fun pr ->
                  Printf.printf "%9.2f"
                    (Psa.Cost.relative_cost ~price_ratio:pr ~seconds_a:t_f
                       ~seconds_b:t_g))
                ratios;
              let crossover =
                Psa.Cost.breakeven_ratio ~seconds_a:t_f ~seconds_b:t_g
              in
              Printf.printf "%12.2f %s\n" crossover
                (match List.assoc_opt id Paper_data.fig6_crossovers with
                | Some p -> Printf.sprintf "(%.1f)" p
                | None -> "(not in the paper)")
          | _ -> Printf.printf "%-13s (FPGA design not available)\n" id))
    fig6_apps

(* ------------------------------------------------------------------ *)
(* Ablation: the X threshold of the Fig. 3 strategy                    *)
(* ------------------------------------------------------------------ *)

let print_ablation () =
  print_endline "";
  print_endline
    "== Ablation: PSA strategy decisions as the FLOPs/B threshold X sweeps ==";
  let xs = [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  Printf.printf "%-13s %10s" "benchmark" "FLOPs/B";
  List.iter (fun x -> Printf.printf "  X=%-7.1f" x) xs;
  print_newline ();
  List.iter
    (fun (c : collected) ->
      Printf.printf "%-13s %10.2f" c.app.id
        (Analysis.Features.offload_intensity c.features);
      List.iter
        (fun x ->
          let ctx =
            {
              (Benchmarks.Bench_app.context c.app) with
              Psa.Context.features = Some c.features;
              eval_features = Some c.features;
              x_threshold = x;
            }
          in
          let e = Psa.Strategy.fig3_explain ctx in
          let short =
            match e.Psa.Strategy.decision with
            | Psa.Strategy.Cpu_path -> "cpu"
            | Psa.Strategy.Gpu_path -> "gpu"
            | Psa.Strategy.Fpga_path -> "fpga"
            | Psa.Strategy.No_offload _ -> "stop"
          in
          Printf.printf "  %-9s" short)
        xs;
      print_newline ())
    (Lazy.force collected)

(* ------------------------------------------------------------------ *)
(* Strategy comparison: Fig. 3 heuristic vs model-based PSA            *)
(* ------------------------------------------------------------------ *)

let print_strategies () =
  print_endline "";
  print_endline
    "== Branch-point A strategies: Fig. 3 heuristic vs model-based PSA ==";
  Printf.printf "%-13s %12s %16s %16s %16s\n" "benchmark" "fig3"
    "model(perf)" "model(cost)" "model(energy)";
  List.iter
    (fun (c : collected) ->
      let base =
        {
          (Benchmarks.Bench_app.context c.app) with
          Psa.Context.features = Some c.features;
          eval_features = Some c.features;
          kernel = Some c.features.Analysis.Features.kernel;
        }
      in
      let show sel =
        match sel with
        | Psa.Flow.Paths [ p ] -> p
        | Psa.Flow.Paths ps -> String.concat "+" ps
        | Psa.Flow.All -> "all"
        | Psa.Flow.Stop _ -> "stop"
      in
      (* the model-based probes need the extracted program; reuse the
         features-only context (the probes read features, not source) *)
      Printf.printf "%-13s %12s %16s %16s %16s\n" c.app.id
        (show (Psa.Strategy.fig3 base))
        (show (Psa.Strategy.model_based ~objective:Psa.Strategy.Performance base))
        (show (Psa.Strategy.model_based ~objective:Psa.Strategy.Monetary_cost base))
        (show (Psa.Strategy.model_based ~objective:Psa.Strategy.Energy base)))
    (Lazy.force collected)

(* ------------------------------------------------------------------ *)
(* Energy (Section IV-D's suggested extension)                         *)
(* ------------------------------------------------------------------ *)

let print_energy () =
  print_endline "";
  print_endline
    "== Energy: joules per run and the most energy-efficient platform ==";
  Printf.printf "%-13s %12s %12s %12s %12s %12s %16s\n" "benchmark" "OMP"
    "HIP 1080Ti" "HIP 2080Ti" "oneAPI A10" "oneAPI S10" "most efficient";
  List.iter
    (fun (c : collected) ->
      let joules name =
        match find_result c name with
        | Some r when r.feasible -> Some (Psa.Cost.energy_of_result r)
        | _ -> None
      in
      let cells =
        List.map
          (fun n -> (n, joules n))
          [
            "omp_epyc7543"; "hip_gtx1080ti"; "hip_rtx2080ti"; "oneapi_arria10";
            "oneapi_stratix10";
          ]
      in
      let best =
        List.fold_left
          (fun acc (n, j) ->
            match (acc, j) with
            | Some (_, bj), Some v when v >= bj -> acc
            | _, Some v -> Some (n, v)
            | _, None -> acc)
          None cells
      in
      let fmt = function
        | Some j when j >= 1.0 -> Printf.sprintf "%.3g J" j
        | Some j -> Printf.sprintf "%.3g mJ" (1000.0 *. j)
        | None -> "n/a"
      in
      Printf.printf "%-13s %12s %12s %12s %12s %12s %16s\n" c.app.id
        (fmt (snd (List.nth cells 0)))
        (fmt (snd (List.nth cells 1)))
        (fmt (snd (List.nth cells 2)))
        (fmt (snd (List.nth cells 3)))
        (fmt (snd (List.nth cells 4)))
        (match best with Some (n, _) -> n | None -> "n/a"))
    (Lazy.force collected)

(* ------------------------------------------------------------------ *)
(* Table II                                                            *)
(* ------------------------------------------------------------------ *)

let print_table2 () =
  print_endline "";
  print_endline "== Table II: comparison of design approaches ==";
  Format.printf "%a" Psa.Report.pp_table2 ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let data = Lazy.force collected in
  let nbody =
    List.find (fun c -> c.app.Benchmarks.Bench_app.id = "nbody") data
  in
  let kmeans =
    List.find (fun c -> c.app.Benchmarks.Bench_app.id = "kmeans") data
  in
  let src = nbody.app.source ~n:64 in
  let parsed = Minic.Parser.parse_program src in
  let gpu_design =
    List.find
      (fun (r : Devices.Simulate.result) -> r.design.name = "hip_rtx2080ti")
      nbody.results
  in
  let fpga_design =
    List.find
      (fun (r : Devices.Simulate.result) -> r.design.name = "oneapi_stratix10")
      kmeans.results
  in
  [
    (* one Test.make per table/figure: time regenerating it from the
       profiled features *)
    Test.make ~name:"fig5_regenerate"
      (Staged.stage (fun () ->
           List.iter
             (fun c ->
               List.iter
                 (fun (r : Devices.Simulate.result) ->
                   ignore (Devices.Simulate.run r.design c.features))
                 c.results)
             data));
    Test.make ~name:"table1_regenerate"
      (Staged.stage (fun () ->
           List.iter
             (fun c ->
               List.iter
                 (fun (r : Devices.Simulate.result) ->
                   ignore
                     (Codegen.Design.loc_delta ~reference:c.reference r.design))
                 c.results)
             data));
    Test.make ~name:"fig6_regenerate"
      (Staged.stage (fun () ->
           List.iter
             (fun pr ->
               ignore
                 (Psa.Cost.relative_cost ~price_ratio:pr ~seconds_a:1.0
                    ~seconds_b:2.0))
             [ 0.25; 0.5; 1.0; 2.0; 4.0 ]));
    Test.make ~name:"table2_regenerate"
      (Staged.stage (fun () ->
           ignore (Format.asprintf "%a" Psa.Report.pp_table2 ())));
    (* toolchain micro-benchmarks *)
    Test.make ~name:"minic_parse_nbody"
      (Staged.stage (fun () -> ignore (Minic.Parser.parse_program src)));
    Test.make ~name:"minic_pretty_nbody"
      (Staged.stage (fun () -> ignore (Minic.Pretty.program_to_string parsed)));
    Test.make ~name:"query_outermost_loops"
      (Staged.stage (fun () ->
           ignore
             Artisan.Query.(stmts ~where:(is_for &&& is_outermost_loop) parsed)));
    Test.make ~name:"dependence_analysis"
      (Staged.stage (fun () ->
           ignore (Analysis.Dependence.analyze_function parsed "main")));
    Test.make ~name:"gpu_model_eval"
      (Staged.stage (fun () ->
           ignore
             (Devices.Gpu_model.time Devices.Spec.rtx2080ti gpu_design.design
                nbody.features)));
    Test.make ~name:"fpga_model_eval"
      (Staged.stage (fun () ->
           ignore
             (Devices.Fpga_model.time Devices.Spec.stratix10 fpga_design.design
                kmeans.features)));
    Test.make ~name:"blocksize_dse"
      (Staged.stage (fun () ->
           ignore (Dse.Blocksize_dse.run gpu_design.design nbody.features)));
    Test.make ~name:"unroll_dse"
      (Staged.stage (fun () ->
           ignore (Dse.Unroll_dse.run fpga_design.design kmeans.features)));
  ]

let run_bechamel () =
  print_endline "";
  print_endline "== bechamel micro-benchmarks (ns per run, OLS estimate) ==";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let est = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ t ] -> Printf.printf "  %-24s %12.1f ns/run\n" name t
          | _ -> Printf.printf "  %-24s (no estimate)\n" name)
        est)
    (List.map
       (fun t -> Test.make_grouped ~name:"" ~fmt:"%s%s" [ t ])
       (bechamel_tests ()))

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match what with
  | "fig5" -> print_fig5 ()
  | "table1" -> print_table1 ()
  | "fig6" -> print_fig6 ()
  | "table2" -> print_table2 ()
  | "ablation" -> print_ablation ()
  | "energy" -> print_energy ()
  | "strategies" -> print_strategies ()
  | "micro" -> run_bechamel ()
  | "perf" ->
      Perf.run
        ~quick:(Array.exists (fun a -> a = "--quick") Sys.argv)
        ()
  | "svc-load" ->
      let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
      let variants =
        (* --mix variants selects the variant-traffic leg *)
        let rec find i =
          if i + 1 >= Array.length Sys.argv then false
          else if Sys.argv.(i) = "--mix" then Sys.argv.(i + 1) = "variants"
          else find (i + 1)
        in
        find 2
      in
      if variants then Svc_load.run_variants ~quick ()
      else Svc_load.run ~quick ()
  | "history-append" ->
      let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
      let d = Report_file.history_append ~quick () in
      Printf.printf "history: appended %d metrics at commit %s (%s) to %s\n"
        (List.length d.Flow_service.Perf_history.metrics)
        d.Flow_service.Perf_history.commit
        (if quick then "quick" else "full")
        Report_file.history_path
  | "gate-history" ->
      let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
      if not (Report_file.history_gate ~quick ()) then exit 1
  | _ ->
      print_fig5 ();
      print_table1 ();
      print_fig6 ();
      print_table2 ();
      print_ablation ();
      print_strategies ();
      print_energy ();
      run_bechamel ());
  print_endline ""
