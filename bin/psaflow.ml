(** psaflow — command-line driver for the PSA-flow toolchain.

    One-shot subcommands:
    - [run BENCH]: run the PSA-flow (informed by default; [--uninformed]
      generates all five designs) and print the flow log and timed
      results;
    - [list]: list benchmarks and the task repository;
    - [export BENCH DESIGN]: print a generated design's source;
    - [analyze BENCH]: print the hotspot, kernel features and the Fig. 3
      strategy decision;
    - [report [--json]]: the measured Fig. 5 / Table I / Fig. 6 data.

    Service subcommands (the flow-as-a-service daemon):
    - [serve]: run the daemon on a Unix socket (or TCP with
      [--socket HOST:PORT]);
    - [submit [BENCH | --file SRC.c]]: submit a flow job, optionally
      [--wait]ing for and printing its report;
    - [status [JOB_ID]]: one job's state, or the full job list;
    - [fetch JOB_ID]: print a finished job's report;
    - [svc-metrics]: the daemon's metrics as JSON;
    - [svc-trace [--slow] [--json]]: the daemon's retained request
      traces (deterministic sample, or slow exemplars);
    - [svc-shutdown]: drain and stop the daemon. *)

open Cmdliner
module Protocol = Flow_service.Protocol
module Client = Flow_service.Client
module Json = Flow_service.Json
module Log = Flow_obs.Log
module Trace = Flow_obs.Trace

(* ------------------------------------------------------------------ *)
(* Error discipline: user mistakes exit non-zero with one line         *)
(* ------------------------------------------------------------------ *)

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("psaflow: " ^ m);
      exit 1)
    fmt

(* ------------------------------------------------------------------ *)
(* Leveled diagnostics: --verbose/--quiet on every command, and the    *)
(* PSAFLOW_LOG env var as the default (see Flow_obs.Log)               *)
(* ------------------------------------------------------------------ *)

let log_term =
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:
            "Verbose diagnostics (debug level; $(b,run) also prints the flow \
             event log).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Only error diagnostics (overrides -v).")
  in
  Term.(
    const (fun verbose quiet ->
        if quiet then Log.set_level Log.Error
        else if verbose then Log.set_level Log.Debug)
    $ verbose $ quiet)

let find_bench id =
  try Benchmarks.Registry.find id
  with Invalid_argument _ ->
    die "unknown benchmark %S (available: %s)" id
      (String.concat ", " Benchmarks.Registry.ids)

(** Run [f], turning the toolchain's diagnosable exceptions into a
    one-line stderr message and exit code 1 (no backtrace). *)
let protect f =
  try f () with
  | Minic.Lexer.Lex_error (m, loc) ->
      die "MiniC lex error: %s at %s" m
        (Format.asprintf "%a" Minic.Loc.pp_short loc)
  | Minic.Parser.Parse_error (m, loc) ->
      die "MiniC parse error: %s at %s" m
        (Format.asprintf "%a" Minic.Loc.pp_short loc)
  | Minic.Typecheck.Type_error (m, loc) ->
      die "MiniC type error: %s at %s" m
        (Format.asprintf "%a" Minic.Loc.pp_short loc)
  | Psa.Std_flow.Flow_error m -> die "flow error: %s" m
  | Client.Client_error m -> die "%s" m

let bench_arg =
  let doc =
    "Benchmark application: " ^ String.concat ", " Benchmarks.Registry.ids
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let x_arg =
  let doc = "FLOPs/byte threshold X of the PSA strategy (Fig. 3)." in
  Arg.(value & opt float 2.0 & info [ "x-threshold"; "x" ] ~doc)

(* the daemon's report is rendered by the same function, so CLI runs and
   fetched service results are byte-identical *)
let print_results results =
  print_string (Flow_service.Flow_exec.render_report results)

(* ------------------------------------------------------------------ *)
(* One-shot commands                                                   *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let uninformed =
    Arg.(
      value & flag
      & info [ "uninformed" ]
          ~doc:"Select all paths at branch point A (generate all designs).")
  in
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~doc:"Cost budget in dollars per run (Fig. 3 feedback).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of the flow execution to \
             $(docv) (open in about:tracing or Perfetto).")
  in
  let run () bench uninformed budget x trace_file =
    protect @@ fun () ->
    let app = find_bench bench in
    let ctx = Benchmarks.Bench_app.context ~x_threshold:x ?budget app in
    if trace_file <> None then Trace.start ();
    Format.printf "running %s PSA-flow on %s (profile n=%d, eval n=%d)@."
      (if uninformed then "uninformed" else "informed")
      app.name app.profile_n app.eval_n;
    let outcome =
      if uninformed then Psa.Std_flow.run_uninformed ~x_threshold:x ctx
      else Psa.Std_flow.run_informed ~x_threshold:x ?budget ctx
    in
    (match trace_file with
    | None -> ()
    | Some path ->
        Trace.stop ();
        let json = Trace.export () in
        (match Json.parse_result json with
        | Ok _ -> ()
        | Error e -> die "internal error: exported trace is invalid JSON: %s" e);
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc json);
        Log.infof "trace: %d spans written to %s"
          (List.length (Trace.completed_spans ()))
          path);
    if Log.enabled Log.Info then
      List.iter (fun l -> Format.printf "  %s@." l) outcome.log;
    print_results outcome.results
  in
  Cmd.v (Cmd.info "run" ~doc:"Run the PSA-flow on a benchmark.")
    Term.(const run $ log_term $ bench_arg $ uninformed $ budget $ x_arg $ trace)

let list_cmd =
  let run () =
    Format.printf "benchmarks (the paper's five):@.";
    List.iter
      (fun (b : Benchmarks.Bench_app.t) ->
        Format.printf "  %-12s %s — %s@." b.id b.name b.description)
      Benchmarks.Registry.all;
    Format.printf "@.extra applications:@.";
    List.iter
      (fun (b : Benchmarks.Bench_app.t) ->
        Format.printf "  %-12s %s — %s@." b.id b.name b.description)
      Benchmarks.Registry.extras;
    Format.printf "@.task repository (Fig. 4):@.%a" Psa.Report.pp_repository ()
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List benchmarks and the design-flow task repository.")
    Term.(const run $ const ())

let analyze_cmd =
  let run () bench x =
    protect @@ fun () ->
    let app = find_bench bench in
    let ctx = Benchmarks.Bench_app.context ~x_threshold:x app in
    let ctxs = Psa.Flow.run Psa.Std_flow.target_independent ctx in
    List.iter
      (fun c ->
        List.iter (fun l -> Format.printf "  %s@." l) (Psa.Context.events c);
        let e = Psa.Strategy.fig3_explain c in
        Format.printf "@.strategy: %a@." Psa.Strategy.pp_explanation e)
      ctxs
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the target-independent analyses and print the PSA decision.")
    Term.(const run $ log_term $ bench_arg $ x_arg)

let explain_cmd =
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~doc:"Cost budget in dollars per run (Fig. 3 feedback).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the decision records as JSON.")
  in
  let run () bench budget x json =
    protect @@ fun () ->
    let app = find_bench bench in
    let ctx = Benchmarks.Bench_app.context ~x_threshold:x ?budget app in
    let outcome = Psa.Std_flow.run_informed ~x_threshold:x ?budget ctx in
    if json then
      print_endline
        (Json.to_string_pretty (Flow_service.Flow_exec.decisions_json outcome))
    else begin
      let decisions = Psa.Context.collect_decisions outcome.contexts in
      Format.printf "decision provenance of the informed PSA-flow on %s:@.@."
        app.name;
      print_string (Flow_obs.Provenance.render_all decisions);
      match Psa.Report.best outcome.results with
      | Some b ->
          Format.printf "@.outcome: %s (%.1fx)@." b.design.name b.speedup
      | None -> Format.printf "@.outcome: no feasible design@."
    end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run the informed PSA-flow and print why each branch point chose \
          its path (strategy, selection, analysis evidence).")
    Term.(const run $ log_term $ bench_arg $ budget $ x_arg $ json)

let export_cmd =
  let design_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DESIGN"
          ~doc:
            "Design name, e.g. omp_epyc7543, hip_rtx2080ti, oneapi_stratix10.")
  in
  let run bench design_name =
    protect @@ fun () ->
    let app = find_bench bench in
    let ctx = Benchmarks.Bench_app.context app in
    let outcome = Psa.Std_flow.run_uninformed ctx in
    match
      List.find_opt
        (fun (r : Devices.Simulate.result) -> r.design.name = design_name)
        outcome.results
    with
    | Some r -> print_string (Codegen.Design.export r.design)
    | None ->
        die "no design %S; available: %s" design_name
          (String.concat ", "
             (List.map
                (fun (r : Devices.Simulate.result) -> r.design.name)
                outcome.results))
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Print the generated source of one design.")
    Term.(const run $ bench_arg $ design_arg)

let debug_cmd_t =
  let run bench =
    protect @@ fun () ->
    ignore (find_bench bench);
    Debug_cmd.run bench
  in
  Cmd.v
    (Cmd.info "debug"
       ~doc:"Print model breakdowns and features for calibration.")
    Term.(const run $ bench_arg)

let flow_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot instead of ASCII.")
  in
  let run dot =
    let flow = Psa.Std_flow.flow () in
    if dot then print_string (Psa.Report.flow_to_dot flow)
    else print_string (Psa.Report.flow_to_ascii flow)
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:"Render the standard PSA-flow (the paper's Fig. 4) as a diagram.")
    Term.(const run $ dot)

let report_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit machine-readable JSON instead of the text tables.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "With $(b,--json): exit 1 when BENCH_psaflow.json is missing or \
             stale (perf fields degraded to null).  Without it, degraded \
             fields only warn on stderr.")
  in
  let trend =
    Arg.(
      value & flag
      & info [ "trend" ]
          ~doc:
            "Print the performance-history trend tables from \
             $(b,BENCH_history.jsonl) (latest value per metric vs the rolling \
             median of prior runs) instead of re-measuring the evaluation \
             data.  No flows are executed.")
  in
  let run json strict trend =
    protect @@ fun () ->
    if trend then Report_cmd.run_trend ~strict ~json ()
    else Report_cmd.run ~strict ~json ()
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Measure and print the Fig. 5 / Table I / Fig. 6 evaluation data \
          (all five benchmarks), or the perf-history trend with $(b,--trend).")
    Term.(const run $ json $ strict $ trend)

(* ------------------------------------------------------------------ *)
(* Service commands                                                    *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc =
    "Daemon address: a Unix socket path, or HOST:PORT for TCP.  Defaults \
     to $(b,PSAFLOW_SOCKET) or the system temp dir."
  in
  Arg.(
    value
    & opt string (Protocol.default_socket_path ())
    & info [ "socket" ] ~docv:"ADDR" ~doc)

let addr_of socket = Protocol.addr_of_string socket

let serve_cmd =
  let workers =
    Arg.(
      value
      & opt int (Flow_service.Scheduler.default_workers ())
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker threads draining the job queue (default \
             $(b,PSAFLOW_SERVICE_WORKERS) or 2).")
  in
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Queued-job bound; submissions beyond it get queue_full.")
  in
  let store_cap =
    Arg.(
      value & opt int 256
      & info [ "store-cap" ] ~docv:"N"
          ~doc:"Result-store capacity (LRU-evicted beyond it).")
  in
  let store_shards =
    Arg.(
      value
      & opt int (Flow_service.Store.default_shards ())
      & info [ "store-shards" ] ~docv:"N"
          ~doc:
            "Result-store shard count (default $(b,PSAFLOW_STORE_SHARDS) or \
             8); 1 restores the single-mutex store.")
  in
  let max_conns =
    Arg.(
      value
      & opt int (Flow_service.Server.default_max_connections ())
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Concurrent connection cap (default \
             $(b,PSAFLOW_MAX_CONNECTIONS) or 64); connections beyond it are \
             rejected with server_busy.")
  in
  let run () socket workers queue_cap store_cap store_shards max_conns =
    protect @@ fun () ->
    let addr = addr_of socket in
    Format.printf "psaflow daemon listening on %s (%d workers)@."
      (Protocol.addr_to_string addr)
      workers;
    Flow_service.Server.serve
      ~config:
        {
          Flow_service.Server.workers;
          queue_capacity = queue_cap;
          store_capacity = store_cap;
          store_shards;
          max_connections = max_conns;
        }
      addr;
    Format.printf "psaflow daemon drained and stopped@."
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the flow daemon (blocks until svc-shutdown).")
    Term.(
      const run $ log_term $ socket_arg $ workers $ queue_cap $ store_cap
      $ store_shards $ max_conns)

let pp_job_line (j : Protocol.job_view) =
  Format.printf "job #%d  %-12s %-10s %-12s %-7s%s%s@." j.job_id j.label
    (Protocol.mode_to_string j.mode)
    (Protocol.strategy_to_string j.strategy)
    (Protocol.state_to_string j.state)
    (if j.cached then " (cached)" else "")
    (match j.wall_s with
    | Some s -> Printf.sprintf "  %.3f s" s
    | None -> "")

let submit_cmd =
  let bench_opt =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark to submit (omit with --file).")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"SRC.c" ~doc:"Submit an inline MiniC source file.")
  in
  let uninformed =
    Arg.(
      value & flag
      & info [ "uninformed" ] ~doc:"Generate all designs (all paths at A).")
  in
  let strategy =
    Arg.(
      value
      & opt (enum (List.map (fun s -> (s, s)) Protocol.strategy_names)) "fig3"
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:
            (Printf.sprintf "PSA strategy at branch point A: %s."
               (String.concat ", " Protocol.strategy_names)))
  in
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~doc:"Cost budget in dollars per run.")
  in
  let wait =
    Arg.(
      value & flag
      & info [ "wait" ] ~doc:"Block until the job finishes; print its report.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Capture a Chrome trace of the job's execution; the trace JSON \
             is embedded in the result data (see $(b,fetch --json)).")
  in
  let run () socket bench_id file uninformed strategy budget x wait trace =
    protect @@ fun () ->
    let source =
      match (bench_id, file) with
      | Some id, None ->
          ignore (find_bench id);
          Protocol.Bench id
      | None, Some path ->
          let ic = open_in_bin path in
          let src =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          Protocol.Inline src
      | _ -> die "exactly one of BENCH or --file is required"
    in
    let submission =
      Protocol.submission
        ~mode:(if uninformed then Protocol.Uninformed else Protocol.Informed)
        ~strategy:
          (Option.get (Protocol.strategy_of_string strategy))
        ~x_threshold:x ?budget ~trace source
    in
    let addr = addr_of socket in
    if wait then
      match Client.submit_and_wait addr submission with
      | Ok (job_id, disposition, r) ->
          Format.eprintf "job #%d %s@." job_id
            (Protocol.disposition_to_string disposition);
          print_string r.report
      | Error e -> die "%s" e
    else
      match Client.rpc addr (Protocol.Submit_flow submission) with
      | Protocol.Submitted { job_id; disposition } ->
          Format.printf "submitted job #%d (%s)@." job_id
            (Protocol.disposition_to_string disposition)
      | Protocol.Error e -> die "%s" (Protocol.error_message e)
      | _ -> die "unexpected response"
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a flow job to the daemon.")
    Term.(
      const run $ log_term $ socket_arg $ bench_opt $ file $ uninformed
      $ strategy $ budget $ x_arg $ wait $ trace)

let status_cmd =
  let job_arg =
    Arg.(
      value
      & pos 0 (some int) None
      & info [] ~docv:"JOB_ID" ~doc:"Job to query (omit to list all jobs).")
  in
  let run socket job_id =
    protect @@ fun () ->
    let addr = addr_of socket in
    match job_id with
    | Some id -> (
        match Client.rpc addr (Protocol.Job_status id) with
        | Protocol.Status j -> pp_job_line j
        | Protocol.Error e -> die "%s" (Protocol.error_message e)
        | _ -> die "unexpected response")
    | None -> (
        match Client.rpc addr Protocol.List_jobs with
        | Protocol.Jobs js ->
            if js = [] then Format.printf "no jobs@."
            else List.iter pp_job_line js
        | Protocol.Error e -> die "%s" (Protocol.error_message e)
        | _ -> die "unexpected response")
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Show one job's state, or list all jobs.")
    Term.(const run $ socket_arg $ job_arg)

let fetch_cmd =
  let job_arg =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"JOB_ID" ~doc:"Job id.")
  in
  let wait =
    Arg.(value & flag & info [ "wait" ] ~doc:"Poll until the job finishes.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the structured result data (designs, log, explain, and \
             the trace for --trace submissions) instead of the report.")
  in
  let run () socket id wait json =
    protect @@ fun () ->
    let addr = addr_of socket in
    let print (r : Protocol.job_result) =
      if json then print_endline (Json.to_string_pretty r.data)
      else print_string r.report
    in
    if wait then
      match Client.wait_result addr id with
      | Ok (_, r) -> print r
      | Error e -> die "%s" e
    else
      match Client.rpc addr (Protocol.Fetch_result id) with
      | Protocol.Result (_, r) -> print r
      | Protocol.Status j ->
          pp_job_line j;
          exit 3 (* not done yet: distinct from hard failures *)
      | Protocol.Error e -> die "%s" (Protocol.error_message e)
      | _ -> die "unexpected response"
  in
  Cmd.v
    (Cmd.info "fetch" ~doc:"Print a finished job's report.")
    Term.(const run $ log_term $ socket_arg $ job_arg $ wait $ json)

let svc_metrics_cmd =
  let run socket =
    protect @@ fun () ->
    match Client.rpc (addr_of socket) Protocol.Metrics with
    | Protocol.Metrics_data m -> print_string (Json.to_string_pretty m)
    | Protocol.Error e -> die "%s" (Protocol.error_message e)
    | _ -> die "unexpected response"
  in
  Cmd.v
    (Cmd.info "svc-metrics" ~doc:"Print the daemon's metrics as JSON.")
    Term.(const run $ socket_arg)

let svc_trace_cmd =
  let slow =
    Arg.(
      value & flag
      & info [ "slow" ]
          ~doc:
            "Show the slow-request exemplar ring (executions at or over \
             $(b,PSAFLOW_SLOW_MS)) instead of the sampled ring.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the full retained records — including each request's \
             Chrome-format span trace — as JSON.")
  in
  let run socket slow json_out =
    protect @@ fun () ->
    let t = Client.traces ~slow (addr_of socket) in
    if json_out then print_endline (Json.to_string_pretty t)
    else
      match t with
      | Json.List [] ->
          Format.printf "no retained %s traces@."
            (if slow then "slow" else "sampled")
      | Json.List records ->
          let field to_v default k r =
            Option.value ~default (Option.bind (Json.member k r) to_v)
          in
          let str = field Json.to_string_opt "?" in
          let int = field Json.to_int_opt 0 in
          let num = field Json.to_float_opt 0.0 in
          List.iter
            (fun r ->
              Format.printf "%-20s job #%-4d %-10s seq %-4d %8.1f ms %4d spans%s@."
                (str "request_id" r) (int "job_id" r) (str "label" r)
                (int "seq" r) (num "wall_ms" r) (int "spans" r)
                (match Json.member "slow" r with
                | Some (Json.Bool true) -> "  [slow]"
                | _ -> ""))
            records
      | _ -> die "unexpected svc_trace payload"
  in
  Cmd.v
    (Cmd.info "svc-trace"
       ~doc:
         "Print the daemon's retained request traces (sampled ring, or slow \
          exemplars with $(b,--slow)).")
    Term.(const run $ socket_arg $ slow $ json)

let svc_shutdown_cmd =
  let run socket =
    protect @@ fun () ->
    match Client.rpc (addr_of socket) Protocol.Shutdown with
    | Protocol.Shutting_down -> Format.printf "daemon shutting down@."
    | Protocol.Error e -> die "%s" (Protocol.error_message e)
    | _ -> die "unexpected response"
  in
  Cmd.v
    (Cmd.info "svc-shutdown" ~doc:"Drain the job queue and stop the daemon.")
    Term.(const run $ socket_arg)

(* ------------------------------------------------------------------ *)

let () =
  (* spans carry real wall-clock timestamps in CLI traces *)
  Trace.set_clock Unix.gettimeofday;
  let info = Cmd.info "psaflow" ~doc:"Auto-generating diverse heterogeneous designs." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            list_cmd;
            analyze_cmd;
            explain_cmd;
            export_cmd;
            debug_cmd_t;
            flow_cmd;
            report_cmd;
            serve_cmd;
            submit_cmd;
            status_cmd;
            fetch_cmd;
            svc_metrics_cmd;
            svc_trace_cmd;
            svc_shutdown_cmd;
          ]))
