(** [psaflow report]: the measured evaluation data of the paper's
    Fig. 5 (hotspot speedups), Table I (added LOC) and Fig. 6 (relative
    platform cost), as a text report (default) or machine-readable JSON
    ([--json], encoded with {!Flow_service.Json}).

    The paper-vs-measured side-by-side comparison lives in
    [bench/main.exe]; this command reports what {e this} toolchain
    measures, in a form other tools can consume. *)

module Json = Flow_service.Json

type collected = {
  app : Benchmarks.Bench_app.t;
  reference : Minic.Ast.program;
  results : Devices.Simulate.result list;
  decision : Psa.Strategy.explanation;
}

let design_names =
  [
    "omp_epyc7543";
    "hip_gtx1080ti";
    "hip_rtx2080ti";
    "oneapi_arria10";
    "oneapi_stratix10";
  ]

let collect_one (app : Benchmarks.Bench_app.t) : collected =
  let ctx = Benchmarks.Bench_app.context app in
  let outcome = Psa.Std_flow.run_uninformed ctx in
  let c0 =
    match outcome.contexts with
    | c :: _ -> c
    | [] -> failwith "flow produced no context"
  in
  {
    app;
    reference = ctx.Psa.Context.reference;
    results = outcome.results;
    decision = Psa.Strategy.fig3_explain c0;
  }

let collect () = Dse.Pool.map collect_one Benchmarks.Registry.all

let find_result (c : collected) name =
  List.find_opt
    (fun (r : Devices.Simulate.result) -> r.design.name = name)
    c.results

let speedup_of c name =
  match find_result c name with
  | Some r when r.feasible -> Some r.speedup
  | _ -> None

(** The informed Auto-Selected bar: fastest design of the Fig. 3
    decision's target family. *)
let auto_selected (c : collected) =
  let target =
    match c.decision.decision with
    | Psa.Strategy.Cpu_path -> Some Codegen.Design.Cpu_openmp
    | Psa.Strategy.Gpu_path -> Some Codegen.Design.Gpu_hip
    | Psa.Strategy.Fpga_path -> Some Codegen.Design.Fpga_oneapi
    | Psa.Strategy.No_offload _ -> None
  in
  Option.bind target (fun t ->
      Psa.Report.best
        (List.filter
           (fun (r : Devices.Simulate.result) -> r.design.target = t)
           c.results))

let loc_delta c name =
  match find_result c name with
  | Some r when r.design.synthesizable ->
      Some (Codegen.Design.loc_delta_percent ~reference:c.reference r.design)
  | _ -> None

let fig6_apps = [ "adpredictor"; "bezier"; "kmeans" ]
let fig6_ratios = [ 0.25; 1.0 /. 3.0; 0.5; 1.0; 2.0; 3.0; 4.0 ]

let seconds_of c name =
  match find_result c name with
  | Some r when r.feasible -> Some r.seconds
  | _ -> None

(** FPGA-vs-GPU platform seconds for the Fig. 6 apps. *)
let fig6_times data =
  List.filter_map
    (fun id ->
      List.find_opt (fun c -> c.app.Benchmarks.Bench_app.id = id) data
      |> Option.map (fun c ->
             ( id,
               seconds_of c "oneapi_stratix10",
               seconds_of c "hip_rtx2080ti" )))
    fig6_apps

(* ------------------------------------------------------------------ *)
(* Text output                                                         *)
(* ------------------------------------------------------------------ *)

let opt_x = function Some v -> Printf.sprintf "%.1f" v | None -> "n/a"

let print_text data =
  print_endline "== Fig. 5: hotspot speedups vs single-thread CPU (measured) ==";
  Printf.printf "%-13s %10s %10s %12s %12s %12s %12s\n" "benchmark" "Auto"
    "OMP" "HIP 1080Ti" "HIP 2080Ti" "oneAPI A10" "oneAPI S10";
  List.iter
    (fun c ->
      let auto =
        Option.map (fun (r : Devices.Simulate.result) -> r.speedup)
          (auto_selected c)
      in
      Printf.printf "%-13s %10s" c.app.id (opt_x auto);
      List.iter
        (fun n -> Printf.printf " %*s" (if n = "omp_epyc7543" then 10 else 12)
            (opt_x (speedup_of c n)))
        design_names;
      print_newline ())
    data;
  print_endline "";
  print_endline "== Table I: added LOC per design, % of reference (measured) ==";
  Printf.printf "%-13s %6s %8s %10s %10s %12s %12s\n" "benchmark" "ref" "OMP"
    "HIP 1080" "HIP 2080" "oneAPI A10" "oneAPI S10";
  List.iter
    (fun c ->
      Printf.printf "%-13s %6d" c.app.id
        (Minic.Loc_count.count_program c.reference);
      List.iteri
        (fun i n ->
          let w = [| 8; 10; 10; 12; 12 |].(i) in
          Printf.printf " %*s" w
            (match loc_delta c n with
            | Some v -> Printf.sprintf "+%.0f%%" v
            | None -> "n/a"))
        design_names;
      print_newline ())
    data;
  print_endline "";
  print_endline
    "== Fig. 6: relative cost, Stratix10 CPU+FPGA vs 2080 Ti CPU+GPU ==";
  Printf.printf "%-13s" "FPGA$/GPU$:";
  List.iter (fun r -> Printf.printf "%9.2f" r) fig6_ratios;
  Printf.printf "%12s\n" "crossover";
  List.iter
    (fun (id, t_f, t_g) ->
      match (t_f, t_g) with
      | Some t_f, Some t_g ->
          Printf.printf "%-13s" id;
          List.iter
            (fun pr ->
              Printf.printf "%9.2f"
                (Psa.Cost.relative_cost ~price_ratio:pr ~seconds_a:t_f
                   ~seconds_b:t_g))
            fig6_ratios;
          Printf.printf "%12.2f\n"
            (Psa.Cost.breakeven_ratio ~seconds_a:t_f ~seconds_b:t_g)
      | _ -> Printf.printf "%-13s (FPGA design not available)\n" id)
    (fig6_times data)

(* ------------------------------------------------------------------ *)
(* JSON output                                                         *)
(* ------------------------------------------------------------------ *)

let opt_float = function Some v -> Json.Float v | None -> Json.Null

(* ------------------------------------------------------------------ *)
(* Performance section                                                 *)
(* ------------------------------------------------------------------ *)

(** The committed performance numbers ([BENCH_psaflow.json], written by
    [bench/main.exe perf]), distilled to what a report consumer needs:
    the core count both speedups were measured on, the parallel flow
    speedup (bounded by [cores]) and the cached-vs-uncached wall-clock
    pair (meaningful regardless of core count), plus the interpreter
    throughput incl. the slot-IR optimizer's contribution
    ([interp.optimized]).

    Degrades rather than raises: an absent/unreadable file, or any
    missing or stale field, yields [Json.Null] for that field and a
    warning in the returned list.  Callers decide whether warnings are
    fatal ([report --strict]). *)
let perf_section () : Json.t * string list =
  let warnings = ref [] in
  let warn fmt =
    Printf.ksprintf (fun m -> warnings := m :: !warnings) fmt
  in
  let bench =
    match
      try
        let ic = open_in "BENCH_psaflow.json" in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic)))
      with Sys_error e ->
        warn "BENCH_psaflow.json unreadable (%s); perf fields are null" e;
        None
    with
    | None -> Json.Null
    | Some text -> (
        match Json.parse_result text with
        | Ok j -> j
        | Error e ->
            warn "BENCH_psaflow.json is not valid JSON (%s); perf fields are \
                  null" e;
            Json.Null)
  in
  (* a path like "flow.sequential_uncached_s": every missing step warns
     once and degrades to Null (suppressed when the whole file already
     failed to load — one warning is enough) *)
  let pick obj path =
    let rec go j = function
      | [] -> Some j
      | name :: rest -> Option.bind (Json.member name j) (fun j -> go j rest)
    in
    match go obj path with
    | Some j -> j
    | None ->
        if obj <> Json.Null then
          warn "BENCH_psaflow.json: missing field %S (stale file? re-run \
                `bench/main.exe perf`)"
            (String.concat "." path);
        Json.Null
  in
  (* advisory only (not --strict fatal): CI legitimately writes the file
     with --quick *)
  (match Json.member "quick" bench with
  | Some (Json.Bool true) ->
      prerr_endline
        "psaflow report: note: BENCH_psaflow.json was written by a --quick \
         run; numbers are smoke-test quality"
  | _ -> ());
  (* bind the fields before reading the warnings ref: tuple components
     evaluate right-to-left, so building the pair directly would
     snapshot the warning list before any [pick] had run *)
  let fields =
    Json.Obj
      [
        ("source", Json.String "BENCH_psaflow.json");
        ("cores", pick bench [ "cores" ]);
        ("jobs", pick bench [ "jobs" ]);
        ("sequential_uncached_s", pick bench [ "flow"; "sequential_uncached_s" ]);
        ("parallel_cached_s", pick bench [ "flow"; "parallel_cached_s" ]);
        (* parallel speedup: bounded by [cores], ~1x on one core *)
        ("flow_speedup", pick bench [ "flow"; "speedup" ]);
        ("cached_vs_uncached_flow", pick bench [ "flow"; "cached_vs_uncached_flow" ]);
        ("outputs_identical", pick bench [ "flow"; "outputs_identical" ]);
        ( "interp_mcycles_per_s",
          pick bench [ "interp"; "threaded"; "mcycles_per_s" ] );
        ("interp_optimized", pick bench [ "interp"; "optimized" ]);
        ( "interp_bytecode_mcycles_per_s",
          pick bench [ "interp"; "bytecode"; "mcycles_per_s" ] );
        ( "interp_bytecode_speedup_vs_threaded",
          pick bench [ "interp"; "bytecode"; "speedup_vs_threaded" ] );
        ("parallel_outputs_identical", pick bench [ "parallel"; "outputs_identical" ]);
        (* surrogate-guided DSE: exhaustive vs guided-warm analytic-model
           call counts, the resulting saving, and the winner-identity
           check (all from the perf bench's "dse" legs) *)
        ( "dse_simulate_calls_exhaustive",
          pick bench [ "dse"; "exhaustive"; "simulate_calls" ] );
        ( "dse_simulate_calls_guided",
          pick bench [ "dse"; "guided_warm"; "simulate_calls" ] );
        ( "dse_simulate_call_reduction",
          pick bench [ "dse"; "simulate_call_reduction" ] );
        ("dse_outputs_identical", pick bench [ "dse"; "outputs_identical" ]);
        ( "surrogate_predictions",
          pick bench [ "dse"; "guided_warm"; "predictions" ] );
        ("surrogate_fallbacks", pick bench [ "dse"; "guided_warm"; "fallbacks" ]);
        ("surrogate_hit_topk", pick bench [ "dse"; "guided_warm"; "hit_topk" ]);
      ]
  in
  (fields, List.rev !warnings)

let json_of_data data : Json.t * string list =
  let fig5 =
    List.map
      (fun c ->
        Json.Obj
          [
            ("benchmark", Json.String c.app.Benchmarks.Bench_app.id);
            ( "decision",
              Json.String (Psa.Strategy.decision_to_string c.decision.decision)
            );
            ( "auto",
              opt_float
                (Option.map
                   (fun (r : Devices.Simulate.result) -> r.speedup)
                   (auto_selected c)) );
            ( "speedups",
              Json.Obj
                (List.map (fun n -> (n, opt_float (speedup_of c n))) design_names)
            );
          ])
      data
  in
  let table1 =
    List.map
      (fun c ->
        Json.Obj
          [
            ("benchmark", Json.String c.app.Benchmarks.Bench_app.id);
            ( "reference_loc",
              Json.Int (Minic.Loc_count.count_program c.reference) );
            ( "added_loc_percent",
              Json.Obj
                (List.map (fun n -> (n, opt_float (loc_delta c n))) design_names)
            );
          ])
      data
  in
  let fig6 =
    List.filter_map
      (fun (id, t_f, t_g) ->
        match (t_f, t_g) with
        | Some t_f, Some t_g ->
            Some
              (Json.Obj
                 [
                   ("benchmark", Json.String id);
                   ("fpga_seconds", Json.Float t_f);
                   ("gpu_seconds", Json.Float t_g);
                   ( "relative_cost",
                     Json.List
                       (List.map
                          (fun pr ->
                            Json.Obj
                              [
                                ("price_ratio", Json.Float pr);
                                ( "cost_ratio",
                                  Json.Float
                                    (Psa.Cost.relative_cost ~price_ratio:pr
                                       ~seconds_a:t_f ~seconds_b:t_g) );
                              ])
                          fig6_ratios) );
                   ( "crossover",
                     Json.Float
                       (Psa.Cost.breakeven_ratio ~seconds_a:t_f ~seconds_b:t_g)
                   );
                 ])
        | _ -> None)
      (fig6_times data)
  in
  let perf, warnings = perf_section () in
  ( Json.Obj
      [
        ("fig5", Json.List fig5);
        ("table1", Json.List table1);
        ("fig6", Json.List fig6);
        ("perf", perf);
      ],
    warnings )

(* ------------------------------------------------------------------ *)
(* Perf trend (BENCH_history.jsonl)                                    *)
(* ------------------------------------------------------------------ *)

module Perf_history = Flow_service.Perf_history

let history_path = "BENCH_history.jsonl"

(* One trend row: the metric's full value series at one scale, its
   latest point, and the delta against the rolling median of the K
   entries before it. *)
type trend_row = {
  metric : string;
  points : int;
  baseline : float option;  (** median of up to K entries before latest *)
  latest : float;
  latest_commit : string;
  delta_pct : float option;
}

let trend_rows (history : Perf_history.datapoint list) ~quick ~k :
    trend_row list =
  let at_scale =
    List.filter (fun (d : Perf_history.datapoint) -> d.quick = quick) history
  in
  let metrics =
    List.sort_uniq compare
      (List.concat_map
         (fun (d : Perf_history.datapoint) -> List.map fst d.metrics)
         at_scale)
  in
  List.filter_map
    (fun metric ->
      let series =
        List.filter_map
          (fun (d : Perf_history.datapoint) ->
            Option.map
              (fun v -> (d.commit, v))
              (List.assoc_opt metric d.metrics))
          at_scale
      in
      match List.rev series with
      | [] -> None
      | (latest_commit, latest) :: earlier ->
          let window =
            List.filteri (fun i _ -> i < k) earlier |> List.map snd
          in
          let baseline = Perf_history.median window in
          let delta_pct =
            Option.bind baseline (fun m ->
                if m = 0.0 then None else Some (100.0 *. ((latest -. m) /. m)))
          in
          Some
            {
              metric;
              points = List.length series;
              baseline;
              latest;
              latest_commit;
              delta_pct;
            })
    metrics

let print_trend_table ~label ~k rows =
  Printf.printf "== perf trend: %s runs (median of up to %d prior entries) ==\n"
    label k;
  if rows = [] then print_endline "  (no history at this scale)"
  else begin
    Printf.printf "%-34s %4s %12s %12s %9s  %s\n" "metric" "n" "median"
      "latest" "delta" "commit";
    List.iter
      (fun r ->
        Printf.printf "%-34s %4d %12s %12.3f %9s  %s\n" r.metric r.points
          (match r.baseline with
          | Some m -> Printf.sprintf "%.3f" m
          | None -> "n/a")
          r.latest
          (match r.delta_pct with
          | Some d -> Printf.sprintf "%+.1f%%" d
          | None -> "n/a")
          r.latest_commit)
      rows
  end

let trend_json ~k history : Json.t =
  let scale quick =
    Json.List
      (List.map
         (fun r ->
           Json.Obj
             [
               ("metric", Json.String r.metric);
               ("points", Json.Int r.points);
               ("median", opt_float r.baseline);
               ("latest", Json.Float r.latest);
               ("latest_commit", Json.String r.latest_commit);
               ("delta_pct", opt_float r.delta_pct);
             ])
         (trend_rows history ~quick ~k))
  in
  Json.Obj
    [
      ("source", Json.String history_path);
      ("k", Json.Int k);
      ("quick", scale true);
      ("full", scale false);
    ]

(** [psaflow report --trend]: the perf-history trend tables.  Reads
    only [BENCH_history.jsonl] — no flows are executed. *)
let run_trend ?(strict = false) ~json () =
  let history = Perf_history.load ~path:history_path in
  let k = Perf_history.default_k () in
  if history = [] then begin
    prerr_endline
      ("psaflow report: no perf history at " ^ history_path
     ^ " (run scripts/perf_gate.sh, or `bench/main.exe history-append`)");
    if strict then exit 1
  end;
  if json then print_string (Json.to_string_pretty (trend_json ~k history))
  else begin
    print_trend_table ~label:"full" ~k (trend_rows history ~quick:false ~k);
    print_endline "";
    print_trend_table ~label:"quick" ~k (trend_rows history ~quick:true ~k)
  end

let run ?(strict = false) ~json () =
  let data = collect () in
  if json then begin
    let j, warnings = json_of_data data in
    List.iter (fun w -> prerr_endline ("psaflow report: warning: " ^ w)) warnings;
    print_string (Json.to_string_pretty j);
    if strict && warnings <> [] then begin
      prerr_endline
        "psaflow report: --strict: treating perf-section warnings as fatal";
      exit 1
    end
  end
  else print_text data
