(** Fast-path safety nets: the shared profile cache must be invisible to
    every analysis, and the domain pool must be invisible to every DSE
    sweep and flow fan-out. *)

let cache = Minic_interp.Profile_cache.clear
let set_cache = Minic_interp.Profile_cache.set_enabled

let with_cache_off f =
  cache ();
  set_cache false;
  Fun.protect ~finally:(fun () -> set_cache true; cache ()) f

let with_jobs n f =
  let saved = !Dse.Pool.override in
  Dse.Pool.override := Some n;
  Fun.protect ~finally:(fun () -> Dse.Pool.override := saved) f

(* ------------------------------------------------------------------ *)
(* Cached vs uncached analyses                                         *)
(* ------------------------------------------------------------------ *)

let trip_list (t : Analysis.Trip_count.t) =
  Hashtbl.fold (fun sid s acc -> (sid, s) :: acc) t []
  |> List.sort compare

(* Every observation the flow's dynamic tasks consume, computed once
   with the cache disabled and twice with it enabled (second pass all
   hits), must be structurally identical. *)
let check_benchmark (b : Benchmarks.Bench_app.t) () =
  let p = Benchmarks.Bench_app.program b ~n:b.profile_n in
  let analyses () =
    let hot = Analysis.Hotspot.detect p in
    let trips = trip_list (Analysis.Trip_count.analyze p) in
    let ex, kernel, _ = Psa.Std_flow.prepare_kernel p in
    let dio = Analysis.Data_inout.analyze ex ~kernel in
    let alias = Analysis.Alias.analyze ex ~kernel in
    let feats = Analysis.Features.analyze ex ~kernel in
    (hot, trips, dio, alias, feats)
  in
  let uncached = with_cache_off analyses in
  cache ();
  Minic_interp.Profile_cache.reset_stats ();
  let cached1 = analyses () in
  let cached2 = analyses () in
  let { Minic_interp.Profile_cache.hits; misses; _ } =
    Minic_interp.Profile_cache.stats ()
  in
  Alcotest.(check bool) "cached pass 1 = uncached" true (uncached = cached1);
  Alcotest.(check bool) "cached pass 2 = uncached" true (uncached = cached2);
  Alcotest.(check bool)
    (Printf.sprintf "cache was exercised (%d hits, %d misses)" hits misses)
    true
    (hits > 0 && misses > 0 && hits > misses);
  cache ()

let cache_tests =
  List.map
    (fun (b : Benchmarks.Bench_app.t) ->
      Alcotest.test_case b.id `Slow (check_benchmark b))
    (Benchmarks.Registry.all @ Benchmarks.Registry.extras)

(* Distinct programs must never share a cache entry, even when they are
   structurally identical (their loop ids differ, and per-loop stats are
   keyed by those ids). *)
let distinct_ids_distinct_entries () =
  let src = {|
int main() {
  int s = 0;
  for (int i = 0; i < 10; i++) { s += i; }
  return s;
}
|} in
  let p1 = Minic.Parser.parse_program src in
  let p2 = Minic.Parser.parse_program src in
  cache ();
  let r1 = Minic_interp.Profile_cache.run p1 in
  let r2 = Minic_interp.Profile_cache.run p2 in
  let sids t = Hashtbl.fold (fun sid _ acc -> sid :: acc) t [] in
  Alcotest.(check bool)
    "loop stats keyed by each program's own ids" false
    (List.sort compare (sids r1.profile.loops)
    = List.sort compare (sids r2.profile.loops));
  Alcotest.(check (float 0.0))
    "identical cycles" r1.profile.cycles r2.profile.cycles;
  cache ()

(* Re-running the same parsed program hits; the hit returns the same
   observations. *)
let same_program_hits () =
  let p =
    Minic.Parser.parse_program
      {|
int main() {
  double x = 0.0;
  for (int i = 0; i < 100; i++) { x = x + 1.5; }
  print_float(x);
  return 0;
}
|}
  in
  cache ();
  Minic_interp.Profile_cache.reset_stats ();
  let r1 = Minic_interp.Profile_cache.run p in
  let r2 = Minic_interp.Profile_cache.run p in
  let { Minic_interp.Profile_cache.hits; misses; _ } =
    Minic_interp.Profile_cache.stats ()
  in
  Alcotest.(check int) "one miss" 1 misses;
  Alcotest.(check int) "one hit" 1 hits;
  Alcotest.(check string) "same output" r1.output r2.output;
  Alcotest.(check (float 0.0)) "same cycles" r1.profile.cycles
    r2.profile.cycles;
  cache ()

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let pool_order () =
  let xs = List.init 100 Fun.id in
  let expect = List.map (fun x -> (2 * x) + 1) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map with %d jobs preserves order" jobs)
        expect
        (Dse.Pool.map ~jobs (fun x -> (2 * x) + 1) xs))
    [ 1; 2; 4; 7 ]

let pool_exception () =
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      ignore
        (Dse.Pool.map ~jobs:4
           (fun x -> if x = 13 then failwith "boom" else x)
           (List.init 20 Fun.id)))

let pool_jobs_env () =
  with_jobs 3 (fun () ->
      Alcotest.(check int) "override wins" 3 (Dse.Pool.jobs ()))

(* ------------------------------------------------------------------ *)
(* Parallel DSE = sequential DSE (qcheck)                              *)
(* ------------------------------------------------------------------ *)

let features_gen =
  QCheck.Gen.(
    let* trip_exp = float_range 3.0 7.0 in
    let* flops = float_range 2.0 400.0 in
    let* bytes = float_range 4.0 64.0 in
    let* regs = int_range 16 200 in
    let* parallel = bool in
    return
      (Feat_fixtures.make ~outer_trip:(10.0 ** trip_exp)
         ~flops_per_iter:flops ~bytes_in_per_iter:bytes
         ~bytes_out_per_iter:bytes ~regs ~outer_parallel:parallel ()))

let features_arb =
  QCheck.make ~print:(fun (f : Analysis.Features.t) ->
      Printf.sprintf "trip=%g flops/iter=%g regs=%d" f.outer_trip
        (f.flops_per_call /. f.outer_trip)
        f.regs_estimate)
    features_gen

(* Each DSE must visit the same candidate set, pick the same winner and
   produce the same annotated design no matter how many domains sweep
   the candidates. *)
let dse_prop name run_dse =
  QCheck.Test.make ~count:25 ~name features_arb (fun features ->
      let seq = with_jobs 1 (fun () -> run_dse features) in
      let par = with_jobs 4 (fun () -> run_dse features) in
      seq = par)

let unroll_prop =
  dse_prop "unroll" (fun f ->
      let d =
        Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi
          ~device_id:"arria10" ()
      in
      let r = Dse.Unroll_dse.run d f in
      (r.chosen_factor, r.synthesizable, r.steps, r.design.unroll_factor))

let blocksize_prop =
  dse_prop "blocksize" (fun f ->
      let d = Feat_fixtures.design ~target:Codegen.Design.Gpu_hip ~device_id:"gtx1080ti" () in
      let r = Dse.Blocksize_dse.run d f in
      (r.chosen_blocksize, r.steps, r.design.blocksize))

let threads_prop =
  dse_prop "threads" (fun f ->
      let d =
        Feat_fixtures.design ~target:Codegen.Design.Cpu_openmp
          ~device_id:"epyc7543" ()
      in
      let r = Dse.Threads_dse.run d f in
      (r.chosen_threads, r.steps, r.design.num_threads))

(* The flow's branch fan-out must produce the same designs in the same
   order with and without worker domains. *)
let uninformed_parallel_identical () =
  let app = List.nth Benchmarks.Registry.all 2 (* bezier: smallest *) in
  let fingerprint (o : Psa.Std_flow.outcome) =
    List.map
      (fun (r : Devices.Simulate.result) ->
        (r.design.name, r.seconds, r.speedup, r.feasible))
      o.results
  in
  let run () =
    fingerprint
      (Psa.Std_flow.run_uninformed (Benchmarks.Bench_app.context app))
  in
  let seq = with_cache_off (fun () -> with_jobs 1 run) in
  let par = with_cache_off (fun () -> with_jobs 4 run) in
  Alcotest.(check bool) "sequential = parallel designs" true (seq = par)

let () =
  Alcotest.run "perf"
    [
      ( "cache",
        cache_tests
        @ [
            Alcotest.test_case "distinct ids, distinct entries" `Quick
              distinct_ids_distinct_entries;
            Alcotest.test_case "same program hits" `Quick same_program_hits;
          ] );
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick pool_order;
          Alcotest.test_case "exceptions propagate" `Quick pool_exception;
          Alcotest.test_case "jobs override" `Quick pool_jobs_env;
        ] );
      ( "dse-parallel",
        [
          QCheck_alcotest.to_alcotest unroll_prop;
          QCheck_alcotest.to_alcotest blocksize_prop;
          QCheck_alcotest.to_alcotest threads_prop;
          Alcotest.test_case "uninformed flow fan-out" `Slow
            uninformed_parallel_identical;
        ] );
    ]
