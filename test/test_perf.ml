(** Fast-path safety nets: the shared profile cache must be invisible to
    every analysis, and the domain pool must be invisible to every DSE
    sweep and flow fan-out. *)

let cache = Minic_interp.Profile_cache.clear
let set_cache = Minic_interp.Profile_cache.set_enabled

(* This binary measures sweep internals (simulate-call counts, explicit
   surrogate fallbacks); the cross-request sweep memo would serve
   repeated sweeps from cache and zero those counters out.  The memo's
   own behavior is covered by test_memo. *)
let () = Dse.Sweep_memo.set_enabled false

let with_cache_off f =
  cache ();
  set_cache false;
  Fun.protect ~finally:(fun () -> set_cache true; cache ()) f

let with_jobs n f =
  let saved = !Dse.Pool.override in
  Dse.Pool.override := Some n;
  Fun.protect ~finally:(fun () -> Dse.Pool.override := saved) f

(* ------------------------------------------------------------------ *)
(* Cached vs uncached analyses                                         *)
(* ------------------------------------------------------------------ *)

let trip_list (t : Analysis.Trip_count.t) =
  Hashtbl.fold (fun sid s acc -> (sid, s) :: acc) t []
  |> List.sort compare

(* Every observation the flow's dynamic tasks consume, computed once
   with the cache disabled and twice with it enabled (second pass all
   hits), must be structurally identical. *)
let check_benchmark (b : Benchmarks.Bench_app.t) () =
  let p = Benchmarks.Bench_app.program b ~n:b.profile_n in
  let analyses () =
    let hot = Analysis.Hotspot.detect p in
    let trips = trip_list (Analysis.Trip_count.analyze p) in
    let ex, kernel, _ = Psa.Std_flow.prepare_kernel p in
    let dio = Analysis.Data_inout.analyze ex ~kernel in
    let alias = Analysis.Alias.analyze ex ~kernel in
    let feats = Analysis.Features.analyze ex ~kernel in
    (hot, trips, dio, alias, feats)
  in
  let uncached = with_cache_off analyses in
  cache ();
  Minic_interp.Profile_cache.reset_stats ();
  let cached1 = analyses () in
  let cached2 = analyses () in
  let { Minic_interp.Profile_cache.hits; misses; _ } =
    Minic_interp.Profile_cache.stats ()
  in
  Alcotest.(check bool) "cached pass 1 = uncached" true (uncached = cached1);
  Alcotest.(check bool) "cached pass 2 = uncached" true (uncached = cached2);
  Alcotest.(check bool)
    (Printf.sprintf "cache was exercised (%d hits, %d misses)" hits misses)
    true
    (hits > 0 && misses > 0 && hits > misses);
  cache ()

let cache_tests =
  List.map
    (fun (b : Benchmarks.Bench_app.t) ->
      Alcotest.test_case b.id `Slow (check_benchmark b))
    (Benchmarks.Registry.all @ Benchmarks.Registry.extras)

(* Distinct programs must never share a cache entry, even when they are
   structurally identical (their loop ids differ, and per-loop stats are
   keyed by those ids). *)
let distinct_ids_distinct_entries () =
  let src = {|
int main() {
  int s = 0;
  for (int i = 0; i < 10; i++) { s += i; }
  return s;
}
|} in
  let p1 = Minic.Parser.parse_program src in
  let p2 = Minic.Parser.parse_program src in
  cache ();
  let r1 = Minic_interp.Profile_cache.run p1 in
  let r2 = Minic_interp.Profile_cache.run p2 in
  let sids t = Hashtbl.fold (fun sid _ acc -> sid :: acc) t [] in
  Alcotest.(check bool)
    "loop stats keyed by each program's own ids" false
    (List.sort compare (sids r1.profile.loops)
    = List.sort compare (sids r2.profile.loops));
  Alcotest.(check (float 0.0))
    "identical cycles" r1.profile.cycles r2.profile.cycles;
  cache ()

(* Re-running the same parsed program hits; the hit returns the same
   observations. *)
let same_program_hits () =
  let p =
    Minic.Parser.parse_program
      {|
int main() {
  double x = 0.0;
  for (int i = 0; i < 100; i++) { x = x + 1.5; }
  print_float(x);
  return 0;
}
|}
  in
  cache ();
  Minic_interp.Profile_cache.reset_stats ();
  let r1 = Minic_interp.Profile_cache.run p in
  let r2 = Minic_interp.Profile_cache.run p in
  let { Minic_interp.Profile_cache.hits; misses; _ } =
    Minic_interp.Profile_cache.stats ()
  in
  Alcotest.(check int) "one miss" 1 misses;
  Alcotest.(check int) "one hit" 1 hits;
  Alcotest.(check string) "same output" r1.output r2.output;
  Alcotest.(check (float 0.0)) "same cycles" r1.profile.cycles
    r2.profile.cycles;
  cache ()

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let pool_order () =
  let xs = List.init 100 Fun.id in
  let expect = List.map (fun x -> (2 * x) + 1) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map with %d jobs preserves order" jobs)
        expect
        (Dse.Pool.map ~jobs (fun x -> (2 * x) + 1) xs))
    [ 1; 2; 4; 7 ]

let pool_exception () =
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      ignore
        (Dse.Pool.map ~jobs:4
           (fun x -> if x = 13 then failwith "boom" else x)
           (List.init 20 Fun.id)))

let pool_jobs_env () =
  with_jobs 3 (fun () ->
      Alcotest.(check int) "override wins" 3 (Dse.Pool.jobs ()))

(* ------------------------------------------------------------------ *)
(* Parallel DSE = sequential DSE (qcheck)                              *)
(* ------------------------------------------------------------------ *)

let features_gen =
  QCheck.Gen.(
    let* trip_exp = float_range 3.0 7.0 in
    let* flops = float_range 2.0 400.0 in
    let* bytes = float_range 4.0 64.0 in
    let* regs = int_range 16 200 in
    let* parallel = bool in
    return
      (Feat_fixtures.make ~outer_trip:(10.0 ** trip_exp)
         ~flops_per_iter:flops ~bytes_in_per_iter:bytes
         ~bytes_out_per_iter:bytes ~regs ~outer_parallel:parallel ()))

let features_arb =
  QCheck.make ~print:(fun (f : Analysis.Features.t) ->
      Printf.sprintf "trip=%g flops/iter=%g regs=%d" f.outer_trip
        (f.flops_per_call /. f.outer_trip)
        f.regs_estimate)
    features_gen

(* Each DSE must visit the same candidate set, pick the same winner and
   produce the same annotated design no matter how many domains sweep
   the candidates. *)
let dse_prop name run_dse =
  QCheck.Test.make ~count:25 ~name features_arb (fun features ->
      let seq = with_jobs 1 (fun () -> run_dse features) in
      let par = with_jobs 4 (fun () -> run_dse features) in
      seq = par)

let unroll_prop =
  dse_prop "unroll" (fun f ->
      let d =
        Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi
          ~device_id:"arria10" ()
      in
      let r = Dse.Unroll_dse.run d f in
      (r.chosen_factor, r.synthesizable, r.steps, r.design.unroll_factor))

let blocksize_prop =
  dse_prop "blocksize" (fun f ->
      let d = Feat_fixtures.design ~target:Codegen.Design.Gpu_hip ~device_id:"gtx1080ti" () in
      let r = Dse.Blocksize_dse.run d f in
      (r.chosen_blocksize, r.steps, r.design.blocksize))

let threads_prop =
  dse_prop "threads" (fun f ->
      let d =
        Feat_fixtures.design ~target:Codegen.Design.Cpu_openmp
          ~device_id:"epyc7543" ()
      in
      let r = Dse.Threads_dse.run d f in
      (r.chosen_threads, r.steps, r.design.num_threads))

(* ------------------------------------------------------------------ *)
(* Fused single-pass profile = legacy per-analysis interpreter runs    *)
(* ------------------------------------------------------------------ *)

module I = Minic_interp

(* Everything a profile records, as a comparable value: totals, access
   counters, per-loop stats, the kernel observations, the program
   output and the return value. *)
let run_fingerprint (r : I.Eval.run) =
  let p = r.profile in
  let loops =
    Hashtbl.fold
      (fun sid (s : I.Profile.loop_stat) acc ->
        (sid, s.invocations, s.iterations, s.min_trip, s.max_trip, s.cycles)
        :: acc)
      p.loops []
    |> List.sort compare
  in
  ( (p.cycles, p.loads, p.stores, p.flops, p.int_ops, p.sfu_ops),
    (p.bytes_read, p.bytes_written),
    loops,
    p.kernel,
    r.output,
    r.return_value )

(* The bare fused run measures bit-identically what the paper's timer
   instrumentation measures: for every candidate loop, the instrumented
   legacy run's timer total equals the projected loop cycles, and the
   instrumentation itself costs nothing. *)
let check_fused_bare (b : Benchmarks.Bench_app.t) () =
  let p = Benchmarks.Bench_app.program b ~n:b.profile_n in
  let legacy =
    I.Eval.run_ir (I.Resolve.compile (Analysis.Hotspot.instrument p))
  in
  let fused = I.Fused_profile.of_run p (I.Eval.run p) in
  Alcotest.(check (float 0.0))
    "instrumentation adds no cycles" legacy.profile.cycles
    (I.Fused_profile.total_cycles fused);
  Alcotest.(check string)
    "same output" legacy.output
    (I.Fused_profile.output fused);
  let cands = Analysis.Hotspot.candidates p in
  Alcotest.(check bool) "benchmark has candidate loops" true (cands <> []);
  List.iter
    (fun (m : Artisan.Query.match_ctx) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "loop %d: legacy timer total = projected cycles"
           m.stmt.sid)
        (I.Profile.timer_total legacy.profile m.stmt.sid)
        (I.Fused_profile.loop_cycles fused m.stmt.sid))
    cands;
  match Analysis.Hotspot.of_fused fused with
  | None -> Alcotest.fail "no hotspot detected"
  | Some h ->
      Alcotest.(check (float 0.0))
        "hotspot cycles = legacy timer total"
        (I.Profile.timer_total legacy.profile h.loop_sid)
        h.cycles

(* Every focused analysis must project the same record out of the fused
   profile that the legacy kernel-focused walker run produces. *)
let check_fused_focus (b : Benchmarks.Bench_app.t) () =
  let p = Benchmarks.Bench_app.program b ~n:b.profile_n in
  let ex, kernel, _ = Psa.Std_flow.prepare_kernel p in
  let legacy = I.Eval.run_ir ~focus:kernel (I.Resolve.compile ex) in
  let fused = I.Fused_profile.of_run ~focus:kernel ex (I.Eval.run ~focus:kernel ex) in
  Alcotest.(check bool)
    "kernel observations identical" true
    (legacy.profile.kernel = I.Fused_profile.kernel_obs fused);
  (* project each analysis from the legacy walker run and compare with
     the production (threaded, cached) analysis entry points *)
  let of_legacy = I.Fused_profile.of_run ~focus:kernel ex legacy in
  let dio = with_cache_off (fun () -> Analysis.Data_inout.analyze ex ~kernel) in
  Alcotest.(check bool)
    "data in/out projection" true
    (dio = Analysis.Data_inout.of_fused of_legacy ~kernel);
  let al = with_cache_off (fun () -> Analysis.Alias.analyze ex ~kernel) in
  Alcotest.(check bool)
    "alias projection" true
    (al = Analysis.Alias.of_fused of_legacy ~kernel);
  let fe = with_cache_off (fun () -> Analysis.Features.analyze ex ~kernel) in
  Alcotest.(check bool)
    "features projection" true
    (fe = Analysis.Features.of_fused of_legacy ~kernel)

let fused_tests =
  List.concat_map
    (fun (b : Benchmarks.Bench_app.t) ->
      [
        Alcotest.test_case (b.id ^ " bare") `Slow (check_fused_bare b);
        Alcotest.test_case (b.id ^ " focused") `Slow (check_fused_focus b);
      ])
    Benchmarks.Registry.all

(* ------------------------------------------------------------------ *)
(* Threaded code = reference walker (qcheck over generated programs)   *)
(* ------------------------------------------------------------------ *)

(* Random MiniC kernels exercising scalar and array arithmetic, casts,
   division, math builtins, short-circuit conditions, nested [for],
   bounded [while] and compound assignment.  Loop variables index the
   64-element arrays as [i + 7*j], which stays in bounds for any pair of
   in-scope loop variables (bounds at most 7). *)
let program_gen =
  let open QCheck.Gen in
  let fresh = ref 0 in
  let loop_vars = [ "i"; "j"; "k" ] in
  let rec iexpr depth vars =
    let leaves =
      [ return "u"; return "v"; map string_of_int (int_range 0 9) ]
      @ List.map return vars
    in
    if depth = 0 then oneof leaves
    else
      frequency
        [
          (3, oneof leaves);
          ( 2,
            let* a = iexpr (depth - 1) vars
            and* b = iexpr (depth - 1) vars
            and* op = oneofl [ "+"; "-"; "*" ] in
            return (Printf.sprintf "(%s %s %s)" a op b) );
          ( 1,
            let* a = iexpr (depth - 1) vars in
            return (Printf.sprintf "(%s / 3)" a) );
          ( 1,
            let* i = idx vars in
            return (Printf.sprintf "b[%s]" i) );
          ( 1,
            let* f = fexpr (depth - 1) vars in
            return (Printf.sprintf "(int)(%s)" f) );
        ]
  and fexpr depth vars =
    let leaves =
      [
        return "x";
        return "y";
        return "0.25";
        return "1.5";
        return "rand01()";
        (let* i = idx vars in
         return (Printf.sprintf "a[%s]" i));
      ]
    in
    if depth = 0 then oneof leaves
    else
      frequency
        [
          (3, oneof leaves);
          ( 3,
            let* a = fexpr (depth - 1) vars
            and* b = fexpr (depth - 1) vars
            and* op = oneofl [ "+"; "-"; "*" ] in
            return (Printf.sprintf "(%s %s %s)" a op b) );
          ( 1,
            let* a = fexpr (depth - 1) vars in
            return (Printf.sprintf "(%s / 1.25)" a) );
          ( 1,
            let* a = fexpr (depth - 1) vars
            and* f = oneofl [ "sqrt(fabs(%s))"; "fabs(%s)"; "sin(%s)"; "cos(%s)" ] in
            return (Printf.sprintf (Scanf.format_from_string f "%s") a) );
          ( 1,
            let* i = iexpr (depth - 1) vars in
            return (Printf.sprintf "(double)(%s)" i) );
        ]
  and idx vars =
    let open QCheck.Gen in
    match vars with
    | [] -> map string_of_int (int_range 0 63)
    | v :: rest ->
        oneof
          ([ return v; map string_of_int (int_range 0 63) ]
          @
          match rest with
          | w :: _ -> [ return (Printf.sprintf "(%s + 7 * %s)" v w) ]
          | [] -> [])
  and cond depth vars =
    let open QCheck.Gen in
    let cmp =
      frequency
        [
          ( 2,
            let* a = fexpr 1 vars
            and* b = fexpr 1 vars
            and* op = oneofl [ "<"; "<="; ">"; ">="; "!=" ] in
            return (Printf.sprintf "%s %s %s" a op b) );
          ( 1,
            let* a = iexpr 1 vars
            and* b = iexpr 1 vars
            and* op = oneofl [ "<"; "=="; ">" ] in
            return (Printf.sprintf "%s %s %s" a op b) );
        ]
    in
    if depth = 0 then cmp
    else
      frequency
        [
          (3, cmp);
          ( 1,
            let* a = cond (depth - 1) vars
            and* b = cond (depth - 1) vars
            and* op = oneofl [ "&&"; "||" ] in
            return (Printf.sprintf "(%s) %s (%s)" a op b) );
        ]
  and stmt depth vars =
    let open QCheck.Gen in
    let simple =
      frequency
        [
          ( 3,
            let* t = oneofl [ "x"; "y" ]
            and* op = oneofl [ "="; "+="; "-="; "*=" ]
            and* e = fexpr 2 vars in
            return (Printf.sprintf "%s %s %s;" t op e) );
          ( 2,
            let* t = oneofl [ "u"; "v" ]
            and* op = oneofl [ "="; "+=" ]
            and* e = iexpr 2 vars in
            return (Printf.sprintf "%s %s %s;" t op e) );
          ( 2,
            let* i = idx vars
            and* op = oneofl [ "="; "+=" ]
            and* e = fexpr 2 vars in
            return (Printf.sprintf "a[%s] %s %s;" i op e) );
          ( 1,
            let* i = idx vars
            and* e = iexpr 2 vars in
            return (Printf.sprintf "b[%s] = %s;" i e) );
        ]
    in
    if depth = 0 then simple
    else
      frequency
        [
          (4, simple);
          ( 2,
            let* c = cond 1 vars
            and* a = block (depth - 1) vars
            and* b = block (depth - 1) vars
            and* has_else = bool in
            return
              (if has_else then
                 Printf.sprintf "if (%s) {\n%s\n} else {\n%s\n}" c a b
               else Printf.sprintf "if (%s) {\n%s\n}" c a) );
          ( 2,
            match List.find_opt (fun v -> not (List.mem v vars)) loop_vars with
            | None -> simple
            | Some v ->
                let* bound = int_range 2 6
                and* body = block (depth - 1) (v :: vars) in
                return
                  (Printf.sprintf "for (int %s = 0; %s < %d; %s++) {\n%s\n}" v
                     v bound v body) );
          ( 1,
            let w =
              incr fresh;
              Printf.sprintf "w%d" !fresh
            in
            let* bound = int_range 1 4
            and* body = block (depth - 1) vars in
            return
              (Printf.sprintf
                 "int %s = %d;\nwhile (%s > 0) {\n%s = %s - 1;\n%s\n}" w bound
                 w w w body) );
        ]
  and block depth vars =
    let open QCheck.Gen in
    let* n = int_range 1 3 in
    let* stmts = flatten_l (List.init n (fun _ -> stmt depth vars)) in
    return (String.concat "\n" stmts)
  in
  let* body = block 3 [] in
  return
    (Printf.sprintf
       {|
double work(double* a, int* b, int n) {
  double x = 0.5;
  double y = 1.5;
  int u = 3;
  int v = 7;
%s
  return x + y + (double)u + 0.125 * (double)v;
}

int main() {
  int n = 64;
  double a[n];
  int b[n];
  for (int s = 0; s < n; s++) {
    a[s] = rand01();
    b[s] = s;
  }
  double acc = 0.0;
  for (int t = 0; t < 3; t++) {
    acc += work(a, b, n);
  }
  print_float(acc);
  print_int(b[5]);
  return 0;
}
|}
       body)

let program_arb = QCheck.make ~print:Fun.id program_gen

(* The threaded-code engine must be indistinguishable from the reference
   tree walker — identical profile, counters, loop stats, kernel
   observations, output and return value — bare and kernel-focused; and
   timer instrumentation must cost nothing on either engine. *)
let engine_equivalence_prop =
  QCheck.Test.make ~count:30 ~name:"threaded = walker on generated programs"
    program_arb (fun src ->
      let p = Minic.Parser.parse_program src in
      let walker = I.Eval.run_ir (I.Resolve.compile p) in
      let threaded = I.Eval.run p in
      let bare_ok = run_fingerprint walker = run_fingerprint threaded in
      let fwalker = I.Eval.run_ir ~focus:"work" (I.Resolve.compile p) in
      let fthreaded = I.Eval.run ~focus:"work" p in
      let focus_ok = run_fingerprint fwalker = run_fingerprint fthreaded in
      let instr = I.Eval.run (Analysis.Hotspot.instrument p) in
      let instr_ok =
        instr.profile.cycles = threaded.profile.cycles
        && instr.output = threaded.output
      in
      if not bare_ok then QCheck.Test.fail_report "bare run diverges";
      if not focus_ok then QCheck.Test.fail_report "focused run diverges";
      if not instr_ok then QCheck.Test.fail_report "instrumented run diverges";
      true)

(* The flow's branch fan-out must produce the same designs in the same
   order with and without worker domains. *)
let uninformed_parallel_identical () =
  let app = List.nth Benchmarks.Registry.all 2 (* bezier: smallest *) in
  let fingerprint (o : Psa.Std_flow.outcome) =
    List.map
      (fun (r : Devices.Simulate.result) ->
        (r.design.name, r.seconds, r.speedup, r.feasible))
      o.results
  in
  let run () =
    fingerprint
      (Psa.Std_flow.run_uninformed (Benchmarks.Bench_app.context app))
  in
  let seq = with_cache_off (fun () -> with_jobs 1 run) in
  let par = with_cache_off (fun () -> with_jobs 4 run) in
  Alcotest.(check bool) "sequential = parallel designs" true (seq = par)

(* ------------------------------------------------------------------ *)
(* Slot-IR optimizer: per-pass bit-identity vs the reference walker    *)
(* ------------------------------------------------------------------ *)

let pass_configs =
  let no_p = I.Opt.no_passes in
  [
    ("fold", { no_p with I.Opt.fold = true });
    ("strength", { no_p with I.Opt.strength = true });
    ("dead", { no_p with I.Opt.dead = true });
    ("hoist", { no_p with I.Opt.hoist = true });
    ("specialize", { no_p with I.Opt.specialize = true });
    ("composed", I.Opt.all_passes);
  ]

(* Every pass alone, and all composed, must leave every observable of a
   run untouched — profile totals, per-loop stats, kernel observations,
   output, return value — bare and kernel-focused, vs the reference
   walker on the un-optimized slot IR. *)
let check_opt_identity (b : Benchmarks.Bench_app.t) () =
  let p = Benchmarks.Bench_app.program b ~n:b.profile_n in
  let ir = I.Resolve.compile p in
  let walker = run_fingerprint (I.Eval.run_ir ir) in
  let ex, kernel, _ = Psa.Std_flow.prepare_kernel p in
  let fir = I.Resolve.compile ex in
  let fwalker = run_fingerprint (I.Eval.run_ir ~focus:kernel fir) in
  List.iter
    (fun (name, config) ->
      let bare =
        I.Eval.run_compiled
          (I.Eval.compile_resolved (I.Opt.optimize ~config ir))
      in
      Alcotest.(check bool)
        (name ^ ": bare run identical") true
        (run_fingerprint bare = walker);
      let focused =
        I.Eval.run_compiled ~focus:kernel
          (I.Eval.compile_resolved (I.Opt.optimize ~config fir))
      in
      Alcotest.(check bool)
        (name ^ ": focused run identical") true
        (run_fingerprint focused = fwalker))
    pass_configs

(* [PSAFLOW_NO_OPT] mirrors [PSAFLOW_NO_CACHE]: the shared flag parser
   accepts 1/true/yes only, and [Opt.set_enabled false] makes
   [Eval.compile] skip the optimizer entirely — observable through the
   published opt_* counters — without changing any run observable. *)
let opt_kill_switch () =
  Unix.putenv "PSAFLOW_TEST_FLAG_ON" "1";
  Alcotest.(check bool)
    "1 turns a flag on" true
    (Flow_obs.Env.flag ~name:"PSAFLOW_TEST_FLAG_ON" ());
  Unix.putenv "PSAFLOW_TEST_FLAG_TYPO" "on";
  Alcotest.(check bool)
    "a typo'd value leaves the flag off" false
    (Flow_obs.Env.flag ~name:"PSAFLOW_TEST_FLAG_TYPO" ());
  Alcotest.(check bool)
    "unset is off" false
    (Flow_obs.Env.flag ~name:"PSAFLOW_TEST_FLAG_UNSET" ());
  let was = I.Opt.is_enabled () in
  Fun.protect ~finally:(fun () -> I.Opt.set_enabled was) @@ fun () ->
  let b = List.nth Benchmarks.Registry.all 1 (* nbody *) in
  let p = Benchmarks.Bench_app.program b ~n:b.profile_n in
  let walker = run_fingerprint (I.Eval.run_ir (I.Resolve.compile p)) in
  let specialized () =
    Flow_obs.Metrics.counter_value Flow_obs.Metrics.global
      "opt_kernels_specialized"
  in
  I.Opt.set_enabled false;
  let c0 = specialized () in
  let off = I.Eval.run_compiled (I.Eval.compile p) in
  Alcotest.(check int) "optimizer skipped when disabled" c0 (specialized ());
  I.Opt.set_enabled true;
  let on = I.Eval.run_compiled (I.Eval.compile p) in
  Alcotest.(check bool) "optimizer ran when enabled" true (specialized () > c0);
  Alcotest.(check bool)
    "disabled run = walker" true
    (run_fingerprint off = walker);
  Alcotest.(check bool) "enabled run = walker" true (run_fingerprint on = walker)

(* The per-pass identity obligation, over generated programs. *)
let opt_equivalence_prop =
  QCheck.Test.make ~count:15
    ~name:"optimizer passes = walker on generated programs" program_arb
    (fun src ->
      let p = Minic.Parser.parse_program src in
      let ir = I.Resolve.compile p in
      let walker = run_fingerprint (I.Eval.run_ir ir) in
      let fwalker = run_fingerprint (I.Eval.run_ir ~focus:"work" ir) in
      List.for_all
        (fun (name, config) ->
          let compiled =
            I.Eval.compile_resolved (I.Opt.optimize ~config ir)
          in
          if run_fingerprint (I.Eval.run_compiled compiled) <> walker then
            QCheck.Test.fail_reportf "%s: bare run diverges" name;
          if
            run_fingerprint (I.Eval.run_compiled ~focus:"work" compiled)
            <> fwalker
          then QCheck.Test.fail_reportf "%s: focused run diverges" name;
          true)
        pass_configs)

let opt_tests =
  List.map
    (fun (b : Benchmarks.Bench_app.t) ->
      Alcotest.test_case b.id `Slow (check_opt_identity b))
    Benchmarks.Registry.all
  @ [
      Alcotest.test_case "kill switch" `Quick opt_kill_switch;
      QCheck_alcotest.to_alcotest opt_equivalence_prop;
    ]

(* ================================================================== *)
(* Register-bytecode VM (Eval.run_vm / Bytecode)                       *)
(* ================================================================== *)

(* The VM obligation over generated programs: both lowered engines —
   the bytecode VM and the threaded closures — must match the reference
   walker on every observable, bare and kernel-focused. *)
let vm_equivalence_prop =
  QCheck.Test.make ~count:30
    ~name:"bytecode VM = walker on generated programs" program_arb
    (fun src ->
      let p = Minic.Parser.parse_program src in
      let ir = I.Resolve.compile p in
      let walker = run_fingerprint (I.Eval.run_ir ir) in
      let fwalker = run_fingerprint (I.Eval.run_ir ~focus:"work" ir) in
      let c = I.Eval.compile_resolved ir in
      if run_fingerprint (I.Eval.run_vm c) <> walker then
        QCheck.Test.fail_report "vm: bare run diverges";
      if run_fingerprint (I.Eval.run_vm ~focus:"work" c) <> fwalker then
        QCheck.Test.fail_report "vm: focused run diverges";
      if run_fingerprint (I.Eval.run_threaded c) <> walker then
        QCheck.Test.fail_report "threaded: bare run diverges";
      if run_fingerprint (I.Eval.run_threaded ~focus:"work" c) <> fwalker
      then QCheck.Test.fail_report "threaded: focused run diverges";
      true)

(* Per-benchmark bit-identity of the VM against the walker, across the
   superinstruction selector (on/off) and worker-domain counts (1/2/4,
   with [vm_shard_min] lowered so benchmark-sized loops actually
   shard). *)
let check_vm_identity (b : Benchmarks.Bench_app.t) () =
  let p = Benchmarks.Bench_app.program b ~n:b.profile_n in
  let ir_opt = I.Opt.optimize (I.Resolve.compile p) in
  let walker = run_fingerprint (I.Eval.run_ir (I.Resolve.compile p)) in
  let saved_jobs = !I.Eval.vm_jobs_override in
  let saved_min = !I.Eval.vm_shard_min in
  Fun.protect ~finally:(fun () ->
      I.Eval.vm_jobs_override := saved_jobs;
      I.Eval.vm_shard_min := saved_min)
  @@ fun () ->
  I.Eval.vm_shard_min := 1;
  List.iter
    (fun (sel, hot) ->
      let c = I.Eval.compile_resolved ~vm_hot:hot ir_opt in
      List.iter
        (fun domains ->
          I.Eval.vm_jobs_override := Some domains;
          let r = I.Eval.run_vm c in
          Alcotest.(check bool)
            (Printf.sprintf "superinstructions %s, %d domains: identical" sel
               domains)
            true
            (run_fingerprint r = walker))
        [ 1; 2; 4 ])
    [ ("on", fun _ -> true); ("off", fun _ -> false) ]

(* Lowered kernels of a fixed data-parallel source, for selector unit
   tests. *)
let vm_lowered_kernels ~hot src =
  let p = Minic.Parser.parse_program src in
  let ir_opt = I.Opt.optimize (I.Resolve.compile p) in
  let bp = I.Bytecode.lower ~hot ir_opt in
  let kps = ref [] in
  Array.iter
    (fun (f : I.Bytecode.fn) ->
      Array.iter
        (function
          | I.Bytecode.IKernel { kp; _ } -> kps := kp :: !kps
          | _ -> ())
        f.I.Bytecode.bc_code)
    (Array.append bp.I.Bytecode.bc_funcs [| bp.I.Bytecode.bc_globals |]);
  List.rev !kps

let vm_triad_src =
  {|
int main() {
  int n = 64;
  double x[n];
  double y[n];
  for (int i = 0; i < n; i++) {
    x[i] = i * 0.5;
    y[i] = i * 0.25;
  }
  double a = 1.5;
  for (int i = 0; i < n; i++) {
    y[i] = y[i] + a * x[i];
  }
  print_float(y[10]);
  return 0;
}
|}

(* The selector on a fixed program: hot kernels shrink (superinstruction
   fusion fired), the fused bodies cover fewer micro-ops than the
   original kinstr stream, and the data-parallel loop is recognized as
   shardable; with everything cold, bodies lower 1:1 and nothing is
   marked fused. *)
let vm_selector_fuses () =
  let kps = vm_lowered_kernels ~hot:(fun _ -> true) vm_triad_src in
  Alcotest.(check bool) "kernels lowered" true (List.length kps >= 2);
  List.iter
    (fun (kp : I.Bytecode.kprog) ->
      let before = Array.length kp.I.Bytecode.kp_kern.I.Resolve.k_body in
      let after = Array.length kp.I.Bytecode.kp_ops in
      Alcotest.(check bool) "hot kernel marked fused" true
        kp.I.Bytecode.kp_fused;
      Alcotest.(check bool) "fusion shrank the body" true (after < before);
      Alcotest.(check bool) "shardable: no loop-carried register dep" true
        kp.I.Bytecode.kp_shardable)
    kps;
  let cold = vm_lowered_kernels ~hot:(fun _ -> false) vm_triad_src in
  List.iter
    (fun (kp : I.Bytecode.kprog) ->
      let before = Array.length kp.I.Bytecode.kp_kern.I.Resolve.k_body in
      Alcotest.(check bool) "cold kernel not fused" false
        kp.I.Bytecode.kp_fused;
      Alcotest.(check int) "cold kernel lowers 1:1" before
        (Array.length kp.I.Bytecode.kp_ops);
      Alcotest.(check int) "cold kernel hoists no literals" 0
        (Array.length kp.I.Bytecode.kp_lits);
      Alcotest.(check int) "cold kernel prefetches nothing" 0
        (Array.length kp.I.Bytecode.kp_prefetch))
    cold

(* [hot_of_profile] thresholding on a measured profile: the dominant
   loop clears the default 2% share, an impossible share admits nothing,
   and unknown statement ids are never hot. *)
let vm_hot_of_profile () =
  let p = Minic.Parser.parse_program vm_triad_src in
  let r = I.Eval.run p in
  let dominant, _ =
    Hashtbl.fold
      (fun sid (ls : I.Profile.loop_stat) ((_, best) as acc) ->
        if ls.I.Profile.cycles > best then (sid, ls.I.Profile.cycles) else acc)
      r.profile.I.Profile.loops (-1, neg_infinity)
  in
  Alcotest.(check bool) "profile has loops" true (dominant >= 0);
  let hot = I.Bytecode.hot_of_profile r.profile in
  Alcotest.(check bool) "dominant loop is hot" true (hot dominant);
  let none = I.Bytecode.hot_of_profile ~min_share:1.1 r.profile in
  Alcotest.(check bool) "impossible share admits nothing" false
    (none dominant);
  Alcotest.(check bool) "unknown sid is cold" false (hot (-42));
  let empty = I.Bytecode.hot_of_profile (I.Profile.create ()) in
  Alcotest.(check bool) "no cycle data: everything hot" true (empty dominant)

(* [PSAFLOW_NO_VM] mirrors [PSAFLOW_NO_OPT]: [Eval.set_vm_enabled false]
   routes [run_compiled] back to the threaded closures — observable
   through the [interp_vm_runs] counter — without changing any run
   observable.  (The shared 1/true/yes flag grammar is covered by
   [opt_kill_switch].) *)
let vm_kill_switch () =
  let was = I.Eval.vm_is_enabled () in
  Fun.protect ~finally:(fun () -> I.Eval.set_vm_enabled was) @@ fun () ->
  let b = List.nth Benchmarks.Registry.all 1 (* nbody *) in
  let p = Benchmarks.Bench_app.program b ~n:b.profile_n in
  let walker = run_fingerprint (I.Eval.run_ir (I.Resolve.compile p)) in
  let c = I.Eval.compile p in
  let vm_runs () =
    Flow_obs.Metrics.counter_value Flow_obs.Metrics.global "interp_vm_runs"
  in
  I.Eval.set_vm_enabled false;
  let c0 = vm_runs () in
  let off = I.Eval.run_compiled c in
  Alcotest.(check int) "VM skipped when disabled" c0 (vm_runs ());
  I.Eval.set_vm_enabled true;
  let on = I.Eval.run_compiled c in
  Alcotest.(check bool) "VM ran when enabled" true (vm_runs () > c0);
  Alcotest.(check bool)
    "disabled run = walker" true
    (run_fingerprint off = walker);
  Alcotest.(check bool) "enabled run = walker" true (run_fingerprint on = walker)

let vm_tests =
  List.map
    (fun (b : Benchmarks.Bench_app.t) ->
      Alcotest.test_case (b.id ^ " superinstructions x domains") `Slow
        (check_vm_identity b))
    Benchmarks.Registry.all
  @ [
      Alcotest.test_case "selector fuses hot kernels" `Quick vm_selector_fuses;
      Alcotest.test_case "hot_of_profile thresholds" `Quick vm_hot_of_profile;
      Alcotest.test_case "kill switch" `Quick vm_kill_switch;
      QCheck_alcotest.to_alcotest vm_equivalence_prop;
    ]

(* ================================================================== *)
(* Surrogate-guided DSE = exhaustive DSE                               *)
(* ================================================================== *)

module Surrogate = Flow_surrogate.Surrogate

(* Pin the surrogate configuration for [f]: fresh models, an explicit
   enabled/topk override, and full restoration afterwards so the other
   suites (which run flows with the surrogate in its default state) are
   untouched. *)
let with_surrogate ~enabled ?topk f =
  Surrogate.reset ();
  Surrogate.set_enabled (Some enabled);
  Surrogate.set_topk topk;
  Fun.protect
    ~finally:(fun () ->
      Surrogate.set_enabled None;
      Surrogate.set_topk None;
      Surrogate.reset ())
    f

let counter name = Flow_obs.Metrics.counter_value Flow_obs.Metrics.global name

(* Every sweep of every device, on generated MiniC kernels: the guided
   winner and the full trajectory must equal the exhaustive sweep's,
   both on a cold model (where the explicit uncertain-fallback simulates
   everything) and on a warm one (where only the top-k is fresh). *)
let surrogate_winner_prop =
  QCheck.Test.make ~count:15
    ~name:"guided DSE winner = exhaustive on generated programs" program_arb
    (fun src ->
      let p = Minic.Parser.parse_program src in
      match Psa.Std_flow.prepare_kernel p with
      | exception Transforms.Extract.Not_extractable _ ->
          (* no extractable kernel, hence no DSE to compare *)
          true
      | ex, kernel, _ ->
      let features = Analysis.Features.analyze ex ~kernel in
      let winners () =
        let u =
          Dse.Unroll_dse.run
            (Feat_fixtures.design ~target:Codegen.Design.Fpga_oneapi
               ~device_id:"arria10" ())
            features
        in
        let b =
          Dse.Blocksize_dse.run
            (Feat_fixtures.design ~target:Codegen.Design.Gpu_hip
               ~device_id:"gtx1080ti" ())
            features
        in
        let t =
          Dse.Threads_dse.run
            (Feat_fixtures.design ~target:Codegen.Design.Cpu_openmp
               ~device_id:"epyc7543" ())
            features
        in
        ( (u.chosen_factor, u.synthesizable, u.steps),
          (b.chosen_blocksize, b.steps),
          (t.chosen_threads, t.steps) )
      in
      let exhaustive = with_surrogate ~enabled:false winners in
      with_surrogate ~enabled:true (fun () ->
          let f0 = counter "surrogate_fallbacks" in
          let cold = winners () in
          let cold_fallbacks = counter "surrogate_fallbacks" - f0 in
          let warm = winners () in
          let warm_fallbacks = counter "surrogate_fallbacks" - f0 - cold_fallbacks in
          if cold <> exhaustive then
            QCheck.Test.fail_report "cold guided sweep diverges";
          if cold_fallbacks <> 3 then
            QCheck.Test.fail_reportf
              "cold model: expected every sweep to take the explicit \
               uncertain-fallback (3), got %d"
              cold_fallbacks;
          if warm <> exhaustive then
            QCheck.Test.fail_report "warm guided sweep diverges";
          if warm_fallbacks <> 0 then
            QCheck.Test.fail_reportf
              "warm model: expected no fallback, got %d" warm_fallbacks;
          true))

(* Full-flow identity per benchmark: the surrogate knob and every top-k
   width must be invisible in the flow's outcome; the warm top-1 pass
   must also clear the >= 10x simulate-call saving the bench gates. *)
let outcome_fingerprint (o : Psa.Std_flow.outcome) =
  List.map
    (fun (r : Devices.Simulate.result) ->
      ( r.design.name,
        r.design.unroll_factor,
        r.design.blocksize,
        r.design.num_threads,
        r.seconds,
        r.speedup,
        r.feasible ))
    o.results

let check_surrogate_identity (b : Benchmarks.Bench_app.t) () =
  let run () =
    let c0 = counter "dse_simulate_calls" in
    let fp =
      outcome_fingerprint
        (Psa.Std_flow.run_uninformed (Benchmarks.Bench_app.context b))
    in
    (fp, counter "dse_simulate_calls" - c0)
  in
  let off, off_calls = with_surrogate ~enabled:false run in
  List.iter
    (fun k ->
      let (cold, _), (warm, warm_calls) =
        with_surrogate ~enabled:true ~topk:k (fun () ->
            let cold = run () in
            let warm = run () in
            (cold, warm))
      in
      Alcotest.(check bool)
        (Printf.sprintf "top-%d cold = exhaustive" k)
        true (cold = off);
      Alcotest.(check bool)
        (Printf.sprintf "top-%d warm = exhaustive" k)
        true (warm = off);
      if k = 1 then
        Alcotest.(check bool)
          (Printf.sprintf
             "top-1 warm simulates >= 10x less (%d vs %d exhaustive calls)"
             warm_calls off_calls)
          true
          (warm_calls * 10 <= off_calls))
    [ 1; 4; 16 ]

let surrogate_tests =
  List.map
    (fun (b : Benchmarks.Bench_app.t) ->
      Alcotest.test_case
        (b.id ^ " on/off x topk identity")
        `Slow
        (check_surrogate_identity b))
    Benchmarks.Registry.all
  @ [ QCheck_alcotest.to_alcotest surrogate_winner_prop ]

let () =
  Alcotest.run "perf"
    [
      ( "cache",
        cache_tests
        @ [
            Alcotest.test_case "distinct ids, distinct entries" `Quick
              distinct_ids_distinct_entries;
            Alcotest.test_case "same program hits" `Quick same_program_hits;
          ] );
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick pool_order;
          Alcotest.test_case "exceptions propagate" `Quick pool_exception;
          Alcotest.test_case "jobs override" `Quick pool_jobs_env;
        ] );
      ("fused", fused_tests);
      ("optimizer", opt_tests);
      ("engine", [ QCheck_alcotest.to_alcotest engine_equivalence_prop ]);
      ("vm", vm_tests);
      ( "dse-parallel",
        [
          QCheck_alcotest.to_alcotest unroll_prop;
          QCheck_alcotest.to_alcotest blocksize_prop;
          QCheck_alcotest.to_alcotest threads_prop;
          Alcotest.test_case "uninformed flow fan-out" `Slow
            uninformed_parallel_identical;
        ] );
      ("surrogate", surrogate_tests);
    ]
