(** Tests for the cross-request stage-memo hierarchy (lib/memo and its
    wiring): byte-identity of memoized vs unmemoized flows over
    generated MiniC programs, single-flight dedup under concurrent
    domains, and LRU capacity/eviction accounting. *)

module Protocol = Flow_service.Protocol
module Flow_exec = Flow_service.Flow_exec
module Json = Flow_service.Json
module Cache = Flow_memo.Cache

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Property: memo-on == memo-off, byte for byte                        *)
(* ------------------------------------------------------------------ *)

(* Small extractable kernels (array-writing for-loop in [main], the
   shape {!Analysis.Hotspot} extracts), varied in size, constants and
   body shape so each qcheck case exercises distinct stage keys. *)
let gen_source =
  QCheck.Gen.(
    let body c1 c2 = function
      | 0 -> Printf.sprintf "b[i] = a[i] * %d.0 + %d.0;" c2 c1
      | 1 -> Printf.sprintf "b[i] = (a[i] + %d.0) * %d.0;" c1 c2
      | _ -> Printf.sprintf "b[i] = a[i] * a[i] + %d.0 * %d.0;" c1 c2
    in
    map
      (fun ((n, shape), (c1, c2)) ->
        Printf.sprintf
          "int main() {\n\
          \  double a[%d];\n\
          \  double b[%d];\n\
          \  for (int i = 0; i < %d; i++) { %s }\n\
          \  return 0;\n\
           }"
          n n n
          (body c1 c2 shape))
      (pair (pair (int_range 8 48) (int_range 0 2)) (pair (int_range 0 99) (int_range 1 9))))

let arb_source = QCheck.make ~print:(fun s -> s) gen_source

(* The parameter variants replayed against each generated source: the
   default plus two that change strategy/mode/x-threshold (distinct
   store keys, shared stage keys). *)
let variant_subs src =
  [
    Protocol.submission (Protocol.Inline src);
    Protocol.submission ~strategy:Protocol.Model_perf (Protocol.Inline src);
    Protocol.submission ~mode:Protocol.Uninformed ~x_threshold:1.0
      (Protocol.Inline src);
  ]

let exec sub =
  match Flow_exec.resolve sub with
  | Error _ -> None
  | Ok { Flow_exec.run; _ } ->
      let r = run ~request_id:None () in
      Some
        ( r.Protocol.report,
          Flow_load.Runner.canonicalize_sids (Json.to_string r.Protocol.data)
        )

let prop_memo_identity =
  QCheck.Test.make ~count:8 ~name:"memo-on == memo-off byte-identically"
    arb_source (fun src ->
      Fun.protect ~finally:(fun () -> Flow_memo.set_globally_enabled true)
      @@ fun () ->
      List.for_all
        (fun sub ->
          (* reference: the unmemoized engine *)
          Flow_memo.set_globally_enabled false;
          let reference = exec sub in
          Flow_memo.set_globally_enabled true;
          (* first memoized submission populates the stage caches,
             repeats serve from them; all three must match the
             reference bytes (after sid canonicalization — each
             memo-off execution re-parses) *)
          let cold = exec sub in
          let warm = exec sub in
          match (reference, cold, warm) with
          | Some r, Some c, Some w -> c = r && w = r
          | _ -> false)
        (variant_subs src))

(* ------------------------------------------------------------------ *)
(* Single-flight dedup under concurrent domains                        *)
(* ------------------------------------------------------------------ *)

let test_single_flight () =
  let c : int Cache.t = Cache.create ~name:"sf_test" ~shards:1 ~cap:8 () in
  let computes = Atomic.make 0 in
  let started = Atomic.make 0 in
  let doms =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            (* all four domains request the key together, so three of
               them find it in flight *)
            Atomic.incr started;
            while Atomic.get started < 4 do
              Domain.cpu_relax ()
            done;
            Cache.find_or_compute c ~key:"k" (fun () ->
                Atomic.incr computes;
                Unix.sleepf 0.05;
                42)))
  in
  let vs = Array.map Domain.join doms in
  Array.iter (fun v -> check_int "value" 42 v) vs;
  check_int "computed exactly once" 1 (Atomic.get computes);
  let s = Cache.stats c in
  check_int "one miss" 1 s.Cache.misses;
  check_int "three hits" 3 s.Cache.hits;
  check "waiters recorded" true (s.Cache.single_flight >= 1)

let test_single_flight_exception () =
  let c : int Cache.t = Cache.create ~name:"sf_exc_test" ~shards:1 () in
  (* a failing compute caches nothing and unblocks retries *)
  (match Cache.find_or_compute c ~key:"k" (fun () -> failwith "boom") with
  | exception Failure m -> check "exception propagates" true (m = "boom")
  | _ -> Alcotest.fail "expected the compute exception");
  check "nothing cached after failure" false (Cache.mem c "k");
  check_int "retry computes fresh" 7
    (Cache.find_or_compute c ~key:"k" (fun () -> 7))

(* ------------------------------------------------------------------ *)
(* LRU capacity and eviction accounting                                *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction () =
  let c : string Cache.t = Cache.create ~name:"lru_test" ~shards:1 ~cap:2 () in
  let v k = Cache.find_or_compute c ~key:k (fun () -> k) in
  ignore (v "a");
  ignore (v "b");
  ignore (v "a");
  (* "a" was touched after "b": inserting "c" must evict "b" (true
     LRU), not "a" (FIFO would evict the older insert) *)
  ignore (v "c");
  check "a survives (recently used)" true (Cache.mem c "a");
  check "c resident" true (Cache.mem c "c");
  check "b evicted (least recently used)" false (Cache.mem c "b");
  check_int "length at capacity" 2 (Cache.length c);
  let s = Cache.stats c in
  check_int "one eviction" 1 s.Cache.evictions;
  check_int "one hit (the touch)" 1 s.Cache.hits;
  check_int "three misses" 3 s.Cache.misses;
  (* shrinking the capacity takes effect on the next insert *)
  Cache.set_capacity c 1;
  ignore (v "d");
  check_int "shrunk to new capacity" 1 (Cache.length c);
  check "survivor is the newest" true (Cache.mem c "d")

let test_global_switch () =
  let c : int Cache.t = Cache.create ~name:"switch_test" ~shards:1 () in
  Fun.protect ~finally:(fun () -> Flow_memo.set_globally_enabled true)
  @@ fun () ->
  Flow_memo.set_globally_enabled false;
  let computes = ref 0 in
  let v () =
    Cache.find_or_compute c ~key:"k" (fun () ->
        incr computes;
        !computes)
  in
  ignore (v ());
  ignore (v ());
  check_int "disabled memo computes every time" 2 !computes;
  check "disabled memo caches nothing" false (Cache.mem c "k");
  Flow_memo.set_globally_enabled true;
  ignore (v ());
  ignore (v ());
  check_int "re-enabled memo computes once more" 3 !computes

let () =
  Alcotest.run "memo"
    [
      ( "identity",
        [ QCheck_alcotest.to_alcotest ~long:false prop_memo_identity ] );
      ( "single-flight",
        [
          Alcotest.test_case "4 domains, one compute" `Quick test_single_flight;
          Alcotest.test_case "exception unblocks waiters" `Quick
            test_single_flight_exception;
        ] );
      ( "lru",
        [
          Alcotest.test_case "tick-on-hit eviction order" `Quick
            test_lru_eviction;
          Alcotest.test_case "global kill-switch" `Quick test_global_switch;
        ] );
    ]
