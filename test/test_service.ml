(** Tests for the flow-as-a-service subsystem (lib/service): the JSON
    library, the framed protocol, the content-addressed store, the
    scheduler, and an end-to-end daemon run over a loopback socket
    checked bit-identical against direct [Std_flow] execution. *)

module Json = Flow_service.Json
module Protocol = Flow_service.Protocol
module Store = Flow_service.Store
module Metrics = Flow_obs.Metrics
module Scheduler = Flow_service.Scheduler
module Server = Flow_service.Server
module Client = Flow_service.Client
module Flow_exec = Flow_service.Flow_exec
module Req_trace = Flow_service.Req_trace
module Perf_history = Flow_service.Perf_history

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Json: parsing units                                                 *)
(* ------------------------------------------------------------------ *)

let test_json_parse_basics () =
  check_str "string escape" "a\"b\\c\nd"
    (match Json.parse {|"a\"b\\c\nd"|} with
    | Json.String s -> s
    | _ -> "<not a string>");
  check "int" true (Json.parse "42" = Json.Int 42);
  check "negative int" true (Json.parse "-7" = Json.Int (-7));
  check "float" true (Json.parse "1.5" = Json.Float 1.5);
  check "exponent is float" true (Json.parse "1e3" = Json.Float 1000.0);
  check "null" true (Json.parse "null" = Json.Null);
  check "bools" true
    (Json.parse "[true,false]" = Json.List [ Json.Bool true; Json.Bool false ]);
  check "unicode escape" true (Json.parse {|"\u0041"|} = Json.String "A");
  check "surrogate pair" true
    (Json.parse {|"\ud83d\ude00"|} = Json.String "\xf0\x9f\x98\x80");
  check "nested" true
    (Json.parse {| {"a": [1, {"b": null}], "c": "x"} |}
    = Json.Obj
        [
          ("a", Json.List [ Json.Int 1; Json.Obj [ ("b", Json.Null) ] ]);
          ("c", Json.String "x");
        ]);
  check "whitespace tolerated" true
    (Json.parse " \n\t{ \"k\" : 1 } \r\n" = Json.Obj [ ("k", Json.Int 1) ])

let test_json_parse_errors () =
  let fails s =
    match Json.parse s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check "empty" true (fails "");
  check "garbage" true (fails "wibble");
  check "trailing garbage" true (fails "{} {}");
  check "unterminated string" true (fails {|"abc|});
  check "unterminated array" true (fails "[1, 2");
  check "missing colon" true (fails {|{"a" 1}|});
  check "bad literal" true (fails "trueish");
  check "raw control char" true (fails "\"a\nb\"");
  check "bad escape" true (fails {|"\q"|});
  check "nan is not json" true (fails "nan")

let test_json_encode () =
  check_str "compact" {|{"a":[1,2.5,"x\n"],"b":null}|}
    (Json.to_string
       (Json.Obj
          [
            ( "a",
              Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x\n" ] );
            ("b", Json.Null);
          ]));
  check "float always refloats" true
    (Json.parse (Json.to_string (Json.Float 1.0)) = Json.Float 1.0);
  check "non-finite rejected" true
    (match Json.to_string (Json.Float Float.nan) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- round-trip property ------------------------------------------- *)

let gen_json =
  let open QCheck.Gen in
  let gen_float =
    oneof
      [
        oneofl [ 0.0; -0.0; 1.0; -1.5; 3.14159265; 1e-9; 1.7e308; 5e-324 ];
        map2
          (fun a b -> float_of_int a /. float_of_int (abs b + 1))
          (int_range (-1000000) 1000000)
          (int_range 0 1000);
      ]
  in
  (* arbitrary bytes: control chars must escape, high bytes pass through *)
  let gen_string = string_size ~gen:char (int_bound 12) in
  let key = string_size ~gen:printable (int_bound 6) in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun n -> Json.Int n) int;
        map (fun f -> Json.Float f) gen_float;
        map (fun s -> Json.String s) gen_string;
      ]
  in
  let rec value fuel =
    if fuel = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          ( 1,
            map (fun vs -> Json.List vs)
              (list_size (int_bound 4) (value (fuel - 1))) );
          ( 1,
            map (fun kvs -> Json.Obj kvs)
              (list_size (int_bound 4) (pair key (value (fuel - 1)))) );
        ]
  in
  value 3

let arb_json = QCheck.make ~print:Json.to_string gen_json

let json_roundtrip =
  Helpers.qtest ~count:500 "parse (to_string v) = v" arb_json (fun v ->
      Json.equal (Json.parse (Json.to_string v)) v)

let json_roundtrip_pretty =
  Helpers.qtest ~count:500 "parse (to_string_pretty v) = v" arb_json (fun v ->
      Json.equal (Json.parse (Json.to_string_pretty v)) v)

(* ------------------------------------------------------------------ *)
(* Protocol: encode/decode round-trips                                 *)
(* ------------------------------------------------------------------ *)

let sample_requests : Protocol.request list =
  [
    Protocol.Submit_flow
      (Protocol.submission ~mode:Protocol.Informed ~strategy:Protocol.Fig3
         (Protocol.Bench "nbody"));
    Protocol.Submit_flow
      (Protocol.submission ~mode:Protocol.Uninformed
         ~strategy:Protocol.Model_cost ~x_threshold:4.5 ~budget:0.25
         (Protocol.Inline "int main() { return 0; }"));
    Protocol.Job_status 7;
    Protocol.Fetch_result 3;
    Protocol.Submit_batch
      [
        Protocol.submission (Protocol.Bench "nbody");
        Protocol.submission ~strategy:Protocol.Model_perf
          (Protocol.Inline "int main() { return 0; }");
      ];
    Protocol.Fetch_batch [ 1; 2; 3 ];
    Protocol.List_jobs;
    Protocol.Metrics;
    Protocol.Shutdown;
  ]

let sample_view : Protocol.job_view =
  {
    Protocol.job_id = 9;
    label = "nbody";
    mode = Protocol.Informed;
    strategy = Protocol.Model_energy;
    state = Protocol.Done;
    cached = true;
    wall_s = Some 0.125;
  }

let sample_responses : Protocol.response list =
  [
    Protocol.Submitted { job_id = 1; disposition = `Fresh };
    Protocol.Submitted { job_id = 2; disposition = `Coalesced };
    Protocol.Submitted { job_id = 3; disposition = `Cached };
    Protocol.Status sample_view;
    Protocol.Status
      { sample_view with state = Protocol.Failed "boom"; wall_s = None };
    Protocol.Result
      ( sample_view,
        {
          Protocol.report = "\ndesign table\nbest: x (2.0x)\n";
          data = Json.Obj [ ("designs", Json.List []) ];
        } );
    Protocol.Jobs [ sample_view; { sample_view with job_id = 10 } ];
    Protocol.Metrics_data (Json.Obj [ ("requests_total", Json.Int 4) ]);
    Protocol.Shutting_down;
    Protocol.Error (Protocol.Bad_request "nope");
    Protocol.Error (Protocol.Bad_version 99);
    Protocol.Error (Protocol.Unknown_benchmark "wat");
    Protocol.Error (Protocol.Minic_parse_error "unexpected ')' at 3:1");
    Protocol.Error (Protocol.Minic_type_error "int vs double at 1:4");
    Protocol.Error Protocol.Queue_full;
    Protocol.Error Protocol.Server_busy;
    Protocol.Error (Protocol.Timeout "receive");
    Protocol.Error (Protocol.Unknown_job 12);
    Protocol.Error (Protocol.Server_error "disk on fire");
    Protocol.Submitted_batch
      [
        Ok (4, `Fresh);
        Ok (5, `Cached);
        Error (Protocol.Minic_parse_error "unexpected '{' at 1:11");
        Error Protocol.Queue_full;
      ];
    Protocol.Results_batch
      [
        Ok
          ( sample_view,
            Some
              {
                Protocol.report = "\ntable\nbest: y (3.0x)\n";
                data = Json.Obj [ ("best", Json.String "y") ];
              } );
        Ok ({ sample_view with state = Protocol.Running }, None);
        Error (Protocol.Unknown_job 77);
      ];
  ]

let test_protocol_roundtrip () =
  List.iter
    (fun r ->
      let j = Json.parse (Json.to_string (Protocol.request_to_json r)) in
      check "request round-trips" true (Protocol.request_of_json j = Ok r))
    sample_requests;
  List.iter
    (fun r ->
      let j = Json.parse (Json.to_string (Protocol.response_to_json r)) in
      check "response round-trips" true (Protocol.response_of_json j = Ok r))
    sample_responses

let test_protocol_versioning () =
  let j = Json.Obj [ ("v", Json.Int 99); ("type", Json.String "metrics") ] in
  check "future version refused" true
    (Protocol.request_of_json j = Error (Protocol.Bad_version 99));
  let j = Json.Obj [ ("type", Json.String "metrics") ] in
  check "missing version refused" true
    (match Protocol.request_of_json j with
    | Error (Protocol.Bad_request _) -> true
    | _ -> false);
  check "unknown type refused" true
    (match
       Protocol.request_of_json
         (Json.Obj [ ("v", Json.Int 1); ("type", Json.String "fry") ])
     with
    | Error (Protocol.Bad_request _) -> true
    | _ -> false);
  check "bench+source refused" true
    (match
       Protocol.request_of_json
         (Json.Obj
            [
              ("v", Json.Int 1);
              ("type", Json.String "submit_flow");
              ("bench", Json.String "nbody");
              ("source", Json.String "int main() { return 0; }");
            ])
     with
    | Error (Protocol.Bad_request _) -> true
    | _ -> false)

(* --- batch frames (protocol v2) ------------------------------------ *)

let gen_submission =
  let open QCheck.Gen in
  let* source =
    oneof
      [
        map (fun i -> Protocol.Bench (Printf.sprintf "bench%d" i)) (int_bound 9);
        map
          (fun i -> Protocol.Inline (Printf.sprintf "int main() { return %d; }" i))
          (int_bound 99);
      ]
  in
  let* mode = oneofl [ Protocol.Informed; Protocol.Uninformed ] in
  let* strategy =
    oneofl
      [ Protocol.Fig3; Protocol.Model_perf; Protocol.Model_cost;
        Protocol.Model_energy ]
  in
  let* x_threshold = map float_of_int (int_range 1 16) in
  let* budget = opt (map (fun n -> float_of_int n /. 4.0) (int_range 1 8)) in
  let* trace = bool in
  let* request_id = opt (map (Printf.sprintf "rq-%d") (int_bound 999)) in
  return
    { Protocol.source; mode; strategy; x_threshold; budget; trace; request_id }

let arb_submit_batch =
  QCheck.make
    ~print:(fun subs ->
      Json.to_string (Protocol.request_to_json (Protocol.Submit_batch subs)))
    QCheck.Gen.(list_size (int_range 1 20) gen_submission)

let batch_request_roundtrip =
  Helpers.qtest ~count:200 "submit_batch frame round-trips" arb_submit_batch
    (fun subs ->
      let req = Protocol.Submit_batch subs in
      let j = Json.parse (Json.to_string (Protocol.request_to_json req)) in
      Protocol.request_of_json j = Ok req)

let fetch_batch_roundtrip =
  Helpers.qtest ~count:200 "fetch_batch frame round-trips"
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 1 10_000))
    (fun ids ->
      let req = Protocol.Fetch_batch ids in
      let j = Json.parse (Json.to_string (Protocol.request_to_json req)) in
      Protocol.request_of_json j = Ok req)

let test_batch_limits () =
  let is_bad = function Error (Protocol.Bad_request _) -> true | _ -> false in
  let reparse j = Json.parse (Json.to_string j) in
  (* empty batches are refused *)
  check "empty submit_batch refused" true
    (is_bad
       (Protocol.request_of_json
          (reparse (Protocol.request_to_json (Protocol.Submit_batch [])))));
  check "empty fetch_batch refused" true
    (is_bad
       (Protocol.request_of_json
          (reparse (Protocol.request_to_json (Protocol.Fetch_batch [])))));
  (* a batch at the cap decodes; one past it is refused *)
  let ids n = List.init n (fun i -> i + 1) in
  check "batch at cap accepted" true
    (Protocol.request_of_json
       (reparse
          (Protocol.request_to_json
             (Protocol.Fetch_batch (ids Protocol.max_batch_jobs))))
    = Ok (Protocol.Fetch_batch (ids Protocol.max_batch_jobs)));
  check "oversized batch refused" true
    (is_bad
       (Protocol.request_of_json
          (reparse
             (Protocol.request_to_json
                (Protocol.Fetch_batch (ids (Protocol.max_batch_jobs + 1)))))));
  (* batch frames are v2: the same frame stamped v1 is refused *)
  let downgrade = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) -> if k = "v" then (k, Json.Int 1) else (k, v))
             fields)
    | j -> j
  in
  check "v1 fetch_batch refused" true
    (is_bad
       (Protocol.request_of_json
          (downgrade (reparse (Protocol.request_to_json (Protocol.Fetch_batch [ 1 ]))))));
  check "v1 submit_batch refused" true
    (is_bad
       (Protocol.request_of_json
          (downgrade
             (reparse
                (Protocol.request_to_json
                   (Protocol.Submit_batch
                      [ Protocol.submission (Protocol.Bench "nbody") ]))))));
  (* a truncated batch item (report without data) is refused *)
  let truncated =
    Json.Obj
      [
        ("v", Json.Int 2);
        ("type", Json.String "results_batch");
        ( "items",
          Json.List
            [
              Json.Obj
                [
                  ( "job",
                    match
                      Protocol.response_to_json (Protocol.Status sample_view)
                    with
                    | Json.Obj fields -> List.assoc "job" fields
                    | _ -> Json.Null );
                  ("report", Json.String "orphan report");
                ];
            ] );
      ]
  in
  check "report-without-data refused" true
    (is_bad (Protocol.response_of_json (reparse truncated)))

(* --- request ids and svc_trace (protocol v3) ----------------------- *)

let test_protocol_v3_trace_frames () =
  let reparse j = Json.parse (Json.to_string j) in
  let is_bad = function Error (Protocol.Bad_request _) -> true | _ -> false in
  let restamp v = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, x) -> if k = "v" then (k, Json.Int v) else (k, x))
             fields)
    | j -> j
  in
  (* svc_trace round-trips for both rings *)
  List.iter
    (fun slow ->
      let req = Protocol.Svc_trace { slow } in
      check "svc_trace round-trips" true
        (Protocol.request_of_json (reparse (Protocol.request_to_json req))
        = Ok req))
    [ true; false ];
  (* the traces response round-trips its payload verbatim *)
  let resp =
    Protocol.Traces
      (Json.List
         [ Json.Obj [ ("request_id", Json.String "c-1"); ("seq", Json.Int 0) ] ])
  in
  check "traces round-trips" true
    (Protocol.response_of_json (reparse (Protocol.response_to_json resp))
    = Ok resp);
  (* submissions carry the request id end to end *)
  let req =
    Protocol.Submit_flow
      (Protocol.submission ~request_id:"c-beef-0" (Protocol.Bench "nbody"))
  in
  check "submission request_id round-trips" true
    (Protocol.request_of_json (reparse (Protocol.request_to_json req)) = Ok req);
  (* v3-only frames are refused when stamped v2 *)
  check "v2 svc_trace refused" true
    (is_bad
       (Protocol.request_of_json
          (restamp 2
             (reparse
                (Protocol.request_to_json (Protocol.Svc_trace { slow = false }))))));
  check "v2 submission with request_id refused" true
    (is_bad (Protocol.request_of_json (restamp 2 (reparse (Protocol.request_to_json req)))));
  (* a pre-v3 peer without request ids still speaks to us *)
  let old = Protocol.Submit_flow (Protocol.submission (Protocol.Bench "nbody")) in
  check "v2 plain submission accepted" true
    (Protocol.request_of_json (restamp 2 (reparse (Protocol.request_to_json old)))
    = Ok old);
  check "v1 plain submission accepted" true
    (Protocol.request_of_json (restamp 1 (reparse (Protocol.request_to_json old)))
    = Ok old)

(* --- framing ------------------------------------------------------- *)

let test_framing_roundtrip () =
  List.iter
    (fun payload ->
      let framed = Protocol.frame payload in
      match Protocol.unframe framed with
      | Some (got, consumed) ->
          check_str "payload preserved" payload got;
          check_int "whole frame consumed" (String.length framed) consumed
      | None -> Alcotest.fail "unframe returned None")
    [ ""; "x"; {|{"v":1,"type":"metrics"}|}; String.make 100_000 'z' ];
  (* two frames back to back *)
  let both = Protocol.frame "first" ^ Protocol.frame "second" in
  let a, next = Option.get (Protocol.unframe both) in
  let b, fin = Option.get (Protocol.unframe ~pos:next both) in
  check_str "first frame" "first" a;
  check_str "second frame" "second" b;
  check "all consumed" true (fin = String.length both);
  check "clean EOF" true (Protocol.unframe ~pos:fin both = None)

let test_framing_errors () =
  let framed = Protocol.frame "hello framing" in
  let truncated = String.sub framed 0 (String.length framed - 3) in
  check "truncated body" true
    (match Protocol.unframe truncated with
    | exception Protocol.Frame_error Protocol.Truncated -> true
    | _ -> false);
  check "truncated header" true
    (match Protocol.unframe (String.sub framed 0 2) with
    | exception Protocol.Frame_error Protocol.Truncated -> true
    | _ -> false);
  (* header declaring more than max_frame_bytes *)
  let huge = Bytes.create 4 in
  Bytes.set_int32_be huge 0 (Int32.of_int (Protocol.max_frame_bytes + 1));
  check "oversized declaration" true
    (match Protocol.unframe (Bytes.to_string huge ^ "xx") with
    | exception Protocol.Frame_error (Protocol.Oversized _) -> true
    | _ -> false);
  check "oversized payload refused on encode" true
    (match Protocol.frame (String.make (Protocol.max_frame_bytes + 1) 'a') with
    | exception Protocol.Frame_error (Protocol.Oversized _) -> true
    | _ -> false)

let test_framing_fd () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Protocol.write_frame a "over the wire";
  Protocol.write_frame a "";
  check "fd frame 1" true (Protocol.read_frame b = Some "over the wire");
  check "fd frame 2" true (Protocol.read_frame b = Some "");
  (* a truncated write: header promising 100 bytes, then EOF *)
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 100l;
  ignore (Unix.write a hdr 0 4);
  Unix.close a;
  check "fd truncation detected" true
    (match Protocol.read_frame b with
    | exception Protocol.Frame_error Protocol.Truncated -> true
    | _ -> false);
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let test_store_dedup_key () =
  let k ?(source = "int main() { return 0; }") ?(mode = "informed")
      ?(strategy = "fig3") ?(x = 2.0) ?budget ?(workload = "inline") () =
    Store.key ~source ~mode ~strategy ~x_threshold:x ~budget ~workload
  in
  check "same inputs same key" true (k () = k ());
  check "source changes key" true (k () <> k ~source:"int main() { return 1; }" ());
  check "mode changes key" true (k () <> k ~mode:"uninformed" ());
  check "strategy changes key" true (k () <> k ~strategy:"model_perf" ());
  check "x changes key" true (k () <> k ~x:4.0 ());
  check "budget changes key" true (k () <> k ~budget:1.0 ());
  check "workload changes key" true (k () <> k ~workload:"bench;profile=8" ())

let test_store_lru () =
  (* one shard: the LRU order assertions need a single eviction clock *)
  let s = Store.create ~shards:1 ~capacity:2 () in
  Store.add s "k1" 1;
  Store.add s "k2" 2;
  check "k1 present" true (Store.find s "k1" = Some 1);
  (* k1 is now most recently used; adding k3 must evict k2 *)
  Store.add s "k3" 3;
  check_int "capacity bound" 2 (Store.length s);
  check "k2 evicted" true (Store.find s "k2" = None);
  check "k1 survived" true (Store.find s "k1" = Some 1);
  check "k3 present" true (Store.find s "k3" = Some 3);
  let hits, misses = Store.stats s in
  check_int "hits" 3 hits;
  check_int "misses" 1 misses;
  (* re-adding an existing key replaces without growing *)
  Store.add s "k3" 33;
  check_int "no growth on replace" 2 (Store.length s);
  check "replaced" true (Store.find s "k3" = Some 33)

(* hex keys shaped like real store digests, so sharding spreads them *)
let digest_key i = Digest.to_hex (Digest.string (Printf.sprintf "key-%d" i))

let test_store_sharding () =
  let s = Store.create ~shards:4 ~capacity:64 () in
  check_int "shard count" 4 (Store.shard_count s);
  (* shard_index is pure and total *)
  for i = 0 to 99 do
    let k = digest_key i in
    let ix = Store.shard_index s k in
    check "index stable" true (ix = Store.shard_index s k);
    check "index in range" true (ix >= 0 && ix < 4)
  done;
  (* uniform digests must not collapse into one shard *)
  let used = Array.make 4 false in
  for i = 0 to 99 do
    used.(Store.shard_index s (digest_key i)) <- true
  done;
  check "all shards used" true (Array.for_all Fun.id used);
  (* shards never exceed capacity; a single-shard store is valid *)
  let one = Store.create ~shards:8 ~capacity:3 () in
  check "shards clamped to capacity" true (Store.shard_count one <= 3);
  let stats = Store.shard_stats s in
  Array.iter
    (fun (st : Store.shard_stat) ->
      check_int "per-shard capacity" 16 st.st_capacity)
    stats

(* Domain-based hammer: concurrent adds and finds on overlapping digests
   must lose no updates, keep every shard within its LRU bound, and
   account every find as exactly one hit or miss. *)
let test_store_hammer () =
  let domains = 4 in
  let keys_per = 64 in
  let total_keys = domains * keys_per in
  (* phase 1: capacity >= distinct keys, so nothing evicts and every
     write must be readable afterwards *)
  let s = Store.create ~shards:4 ~capacity:total_keys () in
  let value_of k = Hashtbl.hash k in
  let hammer d =
    (* overlapping ranges: domain d touches [d*32, d*32 + keys_per) so
       neighbours contend on the same digests *)
    let base = d * (keys_per / 2) in
    for round = 0 to 9 do
      for i = base to base + keys_per - 1 do
        let k = digest_key (i mod total_keys) in
        if (i + round) mod 3 = 0 then Store.add s k (value_of k)
        else ignore (Store.find s k)
      done
    done
  in
  let ds = Array.init domains (fun d -> Domain.spawn (fun () -> hammer d)) in
  Array.iter Domain.join ds;
  (* no lost updates: every key some domain added reads back its value *)
  let written = ref 0 in
  for i = 0 to total_keys - 1 do
    let k = digest_key i in
    match Store.find s k with
    | Some v ->
        incr written;
        check "no torn value" true (v = value_of k)
    | None -> ()
  done;
  check "most keys written and retained" true (!written > 0);
  let hits, misses = Store.stats s in
  check "every find accounted" true (hits + misses > 0);
  Array.iter
    (fun (st : Store.shard_stat) ->
      check "phase1 within bound" true (st.st_length <= st.st_capacity);
      check_int "phase1 no evictions" 0 st.st_evictions)
    (Store.shard_stats s);
  (* phase 2: capacity far below the key population; every add of a new
     key either grows its shard or evicts from it, so per shard
     length + evictions = adds landing there, and length never exceeds
     the bound *)
  let small = Store.create ~shards:4 ~capacity:32 () in
  let adds_per_shard = Array.make 4 0 in
  let lock = Mutex.create () in
  let flood d =
    let mine = Array.make 4 0 in
    for i = d * 200 to (d * 200) + 199 do
      let k = digest_key (100_000 + i) in
      mine.(Store.shard_index small k) <- mine.(Store.shard_index small k) + 1;
      Store.add small k i
    done;
    Mutex.lock lock;
    Array.iteri (fun ix n -> adds_per_shard.(ix) <- adds_per_shard.(ix) + n) mine;
    Mutex.unlock lock
  in
  let ds = Array.init domains (fun d -> Domain.spawn (fun () -> flood d)) in
  Array.iter Domain.join ds;
  Array.iteri
    (fun ix (st : Store.shard_stat) ->
      check "phase2 within bound" true (st.st_length <= st.st_capacity);
      check_int
        (Printf.sprintf "shard %d adds conserved" ix)
        adds_per_shard.(ix)
        (st.st_length + st.st_evictions))
    (Store.shard_stats small)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let dummy_result tag =
  { Protocol.report = tag; data = Json.Obj [ ("tag", Json.String tag) ] }

let wait_until ?(timeout_s = 10.0) pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else (
      Thread.delay 0.01;
      go ())
  in
  go ()

let test_scheduler_dedup () =
  let metrics = Metrics.create () in
  let sched = Scheduler.create ~workers:1 ~queue_capacity:8 ~metrics () in
  let executions = Atomic.make 0 in
  let gate = Mutex.create () in
  Mutex.lock gate;
  let submit () =
    Scheduler.submit sched ~key:"K" ~label:"t" ~mode:Protocol.Informed
      ~strategy:Protocol.Fig3 ~request_id:"rq-dedup" (fun () ->
        Mutex.lock gate;
        Mutex.unlock gate;
        Atomic.incr executions;
        dummy_result "ran")
  in
  let id1, d1 = Result.get_ok (submit ()) in
  (* the job is blocked on [gate]: an identical submission coalesces *)
  let id2, d2 = Result.get_ok (submit ()) in
  check "first is fresh" true (d1 = `Fresh);
  check "second coalesces" true (d2 = `Coalesced);
  check_int "same job" id1 id2;
  Mutex.unlock gate;
  check "job completes" true
    (wait_until (fun () ->
         match Scheduler.status sched id1 with
         | Some { state = Protocol.Done; _ } -> true
         | _ -> false));
  check_int "exactly one execution" 1 (Atomic.get executions);
  (* done and stored: a third identical submission is a store hit *)
  let id3, d3 = Result.get_ok (submit ()) in
  check "third is cached" true (d3 = `Cached);
  check "fresh job id for cached submission" true (id3 <> id1);
  (match Scheduler.result sched id3 with
  | Some (view, Some r) ->
      check "cached flag" true view.Protocol.cached;
      check_str "cached payload" "ran" r.Protocol.report
  | _ -> Alcotest.fail "cached job has no result");
  check_int "still one execution" 1 (Atomic.get executions);
  Scheduler.shutdown sched

let test_scheduler_backpressure () =
  let metrics = Metrics.create () in
  let sched = Scheduler.create ~workers:1 ~queue_capacity:1 ~metrics () in
  let gate = Mutex.create () in
  Mutex.lock gate;
  let submit key =
    Scheduler.submit sched ~key ~label:key ~mode:Protocol.Informed
      ~strategy:Protocol.Fig3 ~request_id:"rq-bp" (fun () ->
        Mutex.lock gate;
        Mutex.unlock gate;
        dummy_result key)
  in
  let id1, _ = Result.get_ok (submit "A") in
  (* wait for A to be picked up so the queue is empty again *)
  check "A running" true
    (wait_until (fun () ->
         match Scheduler.status sched id1 with
         | Some { state = Protocol.Running; _ } -> true
         | _ -> false));
  let _ = Result.get_ok (submit "B") in
  check "queue full is backpressure" true (submit "C" = Error `Queue_full);
  Mutex.unlock gate;
  (* graceful drain: B still completes *)
  Scheduler.shutdown sched;
  let all_done =
    List.for_all
      (fun (v : Protocol.job_view) -> v.state = Protocol.Done)
      (Scheduler.list sched)
  in
  check "drained: every accepted job finished" true all_done;
  check "rejected after shutdown" true (submit "D" = Error `Shutting_down)

let test_scheduler_failure () =
  let metrics = Metrics.create () in
  let sched = Scheduler.create ~workers:1 ~queue_capacity:4 ~metrics () in
  let id, _ =
    Result.get_ok
      (Scheduler.submit sched ~key:"F" ~label:"f" ~mode:Protocol.Informed
         ~strategy:Protocol.Fig3 ~request_id:"rq-f1" (fun () ->
           failwith "deliberate"))
  in
  check "failure recorded" true
    (wait_until (fun () ->
         match Scheduler.status sched id with
         | Some { state = Protocol.Failed msg; _ } -> contains msg "deliberate"
         | _ -> false));
  (* a failed job must not be served from the store *)
  let _, d =
    Result.get_ok
      (Scheduler.submit sched ~key:"F" ~label:"f" ~mode:Protocol.Informed
         ~strategy:Protocol.Fig3 ~request_id:"rq-f2" (fun () ->
           dummy_result "ok"))
  in
  check "failed result not cached" true (d = `Fresh);
  Scheduler.shutdown sched;
  check_int "jobs_failed counted" 1 (Metrics.counter_value metrics "jobs_failed")

(* ------------------------------------------------------------------ *)
(* Request-trace capture (Req_trace)                                   *)
(* ------------------------------------------------------------------ *)

let test_req_trace_sampling () =
  (* sample every 2nd execution; slow threshold unreachably high *)
  let t = Req_trace.create ~sample:2 ~slow_ms:1e12 () in
  for i = 0 to 3 do
    Req_trace.record t
      ~request_id:(Printf.sprintf "r%d" i)
      ~job_id:i ~label:"x"
      (fun () -> ())
  done;
  let executed, retained, retained_slow = Req_trace.stats t in
  check_int "all executions counted" 4 executed;
  check_int "every 2nd retained (incl. the first)" 2 retained;
  check_int "nothing slow" 0 retained_slow;
  check "slow ring empty" true (Req_trace.to_json ~slow:true t = Json.List []);
  match Req_trace.to_json t with
  | Json.List [ newest; oldest ] ->
      check "newest first" true
        (Json.member "request_id" newest = Some (Json.String "r2"));
      check "first execution always sampled" true
        (Json.member "request_id" oldest = Some (Json.String "r0"));
      check "sampled flag set" true
        (Json.member "sampled" newest = Some (Json.Bool true))
  | j -> Alcotest.failf "unexpected sampled ring: %s" (Json.to_string j)

let test_req_trace_slow_exemplars () =
  (* sampling effectively off (1 in 1000), slow threshold 0 ms: every
     execution is a slow exemplar, only the first is sampled *)
  let t = Req_trace.create ~sample:1000 ~slow_ms:0.0 () in
  Req_trace.record t ~request_id:"s0" ~job_id:1 ~label:"x" (fun () -> ());
  Req_trace.record t ~request_id:"s1" ~job_id:2 ~label:"x" (fun () -> ());
  let _, retained, retained_slow = Req_trace.stats t in
  check_int "only seq 0 sampled" 1 retained;
  check_int "both slow" 2 retained_slow;
  (match Req_trace.to_json ~slow:true t with
  | Json.List l -> check_int "slow ring holds both" 2 (List.length l)
  | _ -> Alcotest.fail "slow ring not a list");
  (* a raising job still closes its recording and counts as executed *)
  (try
     Req_trace.record t ~request_id:"s2" ~job_id:3 ~label:"x" (fun () ->
         failwith "deliberate")
   with Failure _ -> ());
  let executed, _, retained_slow = Req_trace.stats t in
  check_int "raised execution counted" 3 executed;
  check_int "raised execution still retained as slow" 3 retained_slow

let test_req_trace_ring_capacity () =
  let t = Req_trace.create ~capacity:2 ~sample:1 ~slow_ms:1e12 () in
  for i = 0 to 4 do
    Req_trace.record t
      ~request_id:(Printf.sprintf "r%d" i)
      ~job_id:i ~label:"x"
      (fun () -> ())
  done;
  let _, retained, _ = Req_trace.stats t in
  check_int "retained counter counts all" 5 retained;
  match Req_trace.to_json t with
  | Json.List [ a; b ] ->
      check "ring keeps the newest two" true
        (Json.member "request_id" a = Some (Json.String "r4")
        && Json.member "request_id" b = Some (Json.String "r3"))
  | j -> Alcotest.failf "unexpected ring: %s" (Json.to_string j)

(* ------------------------------------------------------------------ *)
(* Perf history: JSONL store and rolling-median gate                   *)
(* ------------------------------------------------------------------ *)

let test_perf_history_median () =
  check "odd length" true (Perf_history.median [ 3.0; 1.0; 2.0 ] = Some 2.0);
  check "even length averages the middle pair" true
    (Perf_history.median [ 4.0; 1.0; 2.0; 3.0 ] = Some 2.5);
  check "singleton" true (Perf_history.median [ 7.0 ] = Some 7.0);
  check "empty" true (Perf_history.median [] = None)

let test_perf_history_file_roundtrip () =
  let path = Filename.temp_file "psaflow-history" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  check "missing file is an empty history" true
    (Perf_history.load ~path:(path ^ ".does-not-exist") = []);
  let dp i =
    {
      Perf_history.commit = Printf.sprintf "c%d" i;
      time = float_of_int i;
      quick = i mod 2 = 0;
      metrics = [ ("m", float_of_int (10 + i)); ("n", 0.5) ];
    }
  in
  List.iter (fun i -> Perf_history.append ~path (dp i)) [ 0; 1; 2 ];
  (* corrupt and alien lines are skipped, never fatal *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "not json at all\n{\"commit\": 42}\n";
  close_out oc;
  let loaded = Perf_history.load ~path in
  check_int "three entries survive the corrupt lines" 3 (List.length loaded);
  check "oldest first, fields intact" true
    (match loaded with
    | first :: _ ->
        first.Perf_history.commit = "c0"
        && first.Perf_history.quick
        && List.assoc_opt "m" first.Perf_history.metrics = Some 10.0
    | [] -> false)

let test_perf_history_gate () =
  let dp commit v =
    { Perf_history.commit; time = 0.0; quick = true; metrics = [ ("rps", v) ] }
  in
  let history = [ dp "a" 100.0; dp "b" 110.0; dp "c" 90.0 ] in
  let gate ?exclude_commit ?(quick = true) ~direction ~factor v =
    Perf_history.gate ?exclude_commit ~history ~quick ~metric:"rps" ~direction
      ~factor v
  in
  (match gate ~direction:Perf_history.Higher_better ~factor:0.7 95.0 with
  | Perf_history.Pass { median; used; _ } ->
      check "median of the window" true (median = 100.0);
      check_int "all three entries used" 3 used
  | _ -> Alcotest.fail "expected Pass");
  (match gate ~direction:Perf_history.Higher_better ~factor:0.7 50.0 with
  | Perf_history.Fail _ -> ()
  | _ -> Alcotest.fail "expected Fail below 70% of median");
  (match gate ~direction:Perf_history.Lower_better ~factor:4.0 500.0 with
  | Perf_history.Fail _ -> ()
  | _ -> Alcotest.fail "expected Fail above 4x median");
  (match gate ~direction:Perf_history.Lower_better ~factor:4.0 150.0 with
  | Perf_history.Pass _ -> ()
  | _ -> Alcotest.fail "expected Pass within 4x median");
  (* excluding the gating commit leaves 2 comparable entries -> Skip *)
  (match
     gate ~exclude_commit:"c" ~direction:Perf_history.Higher_better ~factor:0.7
       95.0
   with
  | Perf_history.Skip _ -> ()
  | _ -> Alcotest.fail "expected Skip when < 3 comparable entries");
  (* quick history never gates a full run *)
  (match
     gate ~quick:false ~direction:Perf_history.Higher_better ~factor:0.7 95.0
   with
  | Perf_history.Skip _ -> ()
  | _ -> Alcotest.fail "expected Skip across scales");
  (* an absent metric is a Skip, not a crash *)
  (match
     Perf_history.gate ~history ~quick:true ~metric:"nope"
       ~direction:Perf_history.Higher_better ~factor:0.7 1.0
   with
  | Perf_history.Skip _ -> ()
  | _ -> Alcotest.fail "expected Skip for unknown metric");
  (* the rolling window really rolls: old glory days fall out of K *)
  let history7 =
    List.mapi
      (fun i v -> dp (string_of_int i) v)
      [ 1000.0; 1000.0; 1000.0; 10.0; 10.0; 10.0; 10.0 ]
  in
  match
    Perf_history.gate ~k:4 ~history:history7 ~quick:true ~metric:"rps"
      ~direction:Perf_history.Higher_better ~factor:0.7 9.0
  with
  | Perf_history.Pass { median; _ } ->
      check "window medians only the recent entries" true (median = 10.0)
  | _ -> Alcotest.fail "expected Pass against the rolled window"

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.incr m "reqs";
  Metrics.incr ~by:2 m "reqs";
  Metrics.set_gauge m "depth" 3.0;
  List.iter (fun v -> Metrics.observe m "lat" v) [ 0.1; 0.2; 0.3; 0.4 ];
  let j = Metrics.to_json ~extra:[ ("extra", Json.Int 7) ] m in
  (* must survive its own wire encoding *)
  let j = Json.parse (Json.to_string j) in
  check "counter" true (Json.member "reqs" j = Some (Json.Int 3));
  check "gauge" true (Json.member "depth" j = Some (Json.Float 3.0));
  check "extra field" true (Json.member "extra" j = Some (Json.Int 7));
  (match Json.member "lat" j with
  | Some hist ->
      check "hist count" true (Json.member "count" hist = Some (Json.Int 4));
      check "hist p50" true
        (match Option.bind (Json.member "p50" hist) Json.to_float_opt with
        | Some p -> p >= 0.1 && p <= 0.4
        | None -> false)
  | None -> Alcotest.fail "no histogram in metrics json")

(* ------------------------------------------------------------------ *)
(* End-to-end: daemon on a loopback socket vs direct Std_flow          *)
(* ------------------------------------------------------------------ *)

let with_daemon ?(config = { (Server.default_config ()) with workers = 2;
                              queue_capacity = 16; store_capacity = 32 }) f =
  let path = Filename.temp_file "psaflow-test" ".sock" in
  Sys.remove path;
  let addr = Protocol.Unix_path path in
  let server = Thread.create (fun () -> Server.serve ~config addr) () in
  (* wait for the socket to accept connections *)
  let ready =
    wait_until (fun () ->
        match Client.connect addr with
        | c ->
            Client.close c;
            true
        | exception Client.Client_error _ -> false)
  in
  if not ready then Alcotest.fail "daemon did not come up";
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Client.rpc addr Protocol.Shutdown) with _ -> ());
      Thread.join server)
    (fun () -> f addr)

let direct_report (app : Benchmarks.Bench_app.t) =
  let ctx = Benchmarks.Bench_app.context ~x_threshold:2.0 app in
  let outcome = Psa.Std_flow.run_informed ~x_threshold:2.0 ctx in
  Flow_exec.render_report outcome.results

let test_end_to_end () =
  with_daemon (fun addr ->
      (* submit all five paper benchmarks, poll to completion *)
      let ids =
        List.map
          (fun (app : Benchmarks.Bench_app.t) ->
            match
              Client.rpc addr
                (Protocol.Submit_flow
                   (Protocol.submission (Protocol.Bench app.id)))
            with
            | Protocol.Submitted { job_id; disposition = `Fresh } ->
                (app, job_id)
            | other ->
                Alcotest.failf "unexpected submit response for %s: %s" app.id
                  (Json.to_string (Protocol.response_to_json other)))
          Benchmarks.Registry.all
      in
      List.iter
        (fun ((app : Benchmarks.Bench_app.t), job_id) ->
          match Client.wait_result addr job_id with
          | Ok (view, r) ->
              check "job done" true (view.Protocol.state = Protocol.Done);
              check "not cached" true (not view.Protocol.cached);
              (* the service report must be bit-identical to a direct run *)
              check_str
                (app.id ^ " service report = direct run")
                (direct_report app) r.Protocol.report;
              check "structured data has designs" true
                (match Json.member "designs" r.Protocol.data with
                | Some (Json.List (_ :: _)) -> true
                | _ -> false)
          | Error e -> Alcotest.fail e)
        ids;
      (* duplicate submission: served from the store, no execution *)
      let app0 = List.hd Benchmarks.Registry.all in
      (match
         Client.rpc addr
           (Protocol.Submit_flow (Protocol.submission (Protocol.Bench app0.id)))
       with
      | Protocol.Submitted { job_id; disposition = `Cached } -> (
          match Client.rpc addr (Protocol.Fetch_result job_id) with
          | Protocol.Result (view, r) ->
              check "cached job flagged" true view.Protocol.cached;
              check_str "cached report identical" (direct_report app0)
                r.Protocol.report
          | other ->
              Alcotest.failf "cached fetch: %s"
                (Json.to_string (Protocol.response_to_json other)))
      | other ->
          Alcotest.failf "duplicate submit: %s"
            (Json.to_string (Protocol.response_to_json other)));
      (* typed errors over the wire *)
      (match
         Client.rpc addr
           (Protocol.Submit_flow (Protocol.submission (Protocol.Bench "wat")))
       with
      | Protocol.Error (Protocol.Unknown_benchmark "wat") -> ()
      | _ -> Alcotest.fail "expected unknown_benchmark");
      (match
         Client.rpc addr
           (Protocol.Submit_flow
              (Protocol.submission (Protocol.Inline "int main( {")))
       with
      | Protocol.Error (Protocol.Minic_parse_error _) -> ()
      | _ -> Alcotest.fail "expected minic_parse_error");
      (match
         Client.rpc addr
           (Protocol.Submit_flow
              (Protocol.submission
                 (Protocol.Inline "int main() { x = 1; return 0; }")))
       with
      | Protocol.Error (Protocol.Minic_type_error _) -> ()
      | _ -> Alcotest.fail "expected minic_type_error");
      (* metrics: well-formed JSON with the expected counters *)
      match Client.rpc addr Protocol.Metrics with
      | Protocol.Metrics_data m ->
          let m = Json.parse (Json.to_string m) in
          let counter name =
            Option.value ~default:(-1)
              (Option.bind (Json.member name m) Json.to_int_opt)
          in
          check_int "five executions" 5 (counter "jobs_completed");
          check "store hit recorded" true (counter "store_hits" >= 1);
          check "submissions counted" true (counter "requests_submit_flow" >= 6)
      | other ->
          Alcotest.failf "metrics: %s"
            (Json.to_string (Protocol.response_to_json other)))

(* The [explain] field served by the daemon must be exactly the decision
   provenance a direct in-process run records, and a traced submission
   must come back with an embedded Chrome trace document. *)
let test_explain_and_trace () =
  with_daemon (fun addr ->
      let app = List.nth Benchmarks.Registry.all 2 (* bezier: smallest *) in
      let direct_explain =
        let ctx = Benchmarks.Bench_app.context ~x_threshold:2.0 app in
        Flow_exec.decisions_json (Psa.Std_flow.run_informed ~x_threshold:2.0 ctx)
      in
      let submit ~trace =
        match
          Client.rpc addr
            (Protocol.Submit_flow
               (Protocol.submission ~trace (Protocol.Bench app.id)))
        with
        | Protocol.Submitted { job_id; _ } -> (
            match Client.wait_result addr job_id with
            | Ok (_, r) -> r.Protocol.data
            | Error e -> Alcotest.fail e)
        | other ->
            Alcotest.failf "submit: %s"
              (Json.to_string (Protocol.response_to_json other))
      in
      let plain = submit ~trace:false in
      (match Json.member "explain" plain with
      | Some served ->
          check "daemon explain = direct explain" true
            (Json.equal served direct_explain);
          check "explain is non-empty" true
            (match served with Json.List (_ :: _) -> true | _ -> false)
      | None -> Alcotest.fail "no explain field in job data");
      check "untraced job carries no trace" true
        (Json.member "trace" plain = None);
      (* tracing changes the store key: this is a fresh execution, not a
         cache hit on the untraced result *)
      let traced = submit ~trace:true in
      (match Json.member "explain" traced with
      | Some served ->
          check "traced job explain unchanged" true
            (Json.equal served direct_explain)
      | None -> Alcotest.fail "no explain field in traced job data");
      match Option.bind (Json.member "trace" traced) (Json.member "traceEvents") with
      | Some (Json.List events) ->
          check "trace has events" true (events <> []);
          check "trace covers the whole job" true
            (List.exists
               (fun ev ->
                 Json.member "cat" ev = Some (Json.String "service"))
               events);
          check "trace reaches the branch decisions" true
            (List.exists
               (fun ev ->
                 Json.member "cat" ev = Some (Json.String "branch"))
               events)
      | _ -> Alcotest.fail "traced job has no embedded trace document")

(* An extractable inline kernel (hotspot loop in main, array-writing
   body), cheap enough to run many of under `Quick *)
let inline_kernel tag =
  Printf.sprintf
    {|int main() {
  double a[64];
  double b[64];
  for (int i = 0; i < 64; i++) { b[i] = a[i] * 1.5 + %d.0; }
  return 0;
}|}
    tag

let test_batch_end_to_end () =
  with_daemon (fun addr ->
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let subs =
        [
          Protocol.submission (Protocol.Inline (inline_kernel 1));
          Protocol.submission (Protocol.Inline (inline_kernel 2));
          (* duplicate of the first: must coalesce or hit the store *)
          Protocol.submission (Protocol.Inline (inline_kernel 1));
          (* poison in the middle must not void its neighbours *)
          Protocol.submission (Protocol.Inline "int main( {");
        ]
      in
      let items = Client.submit_batch c subs in
      check_int "item per submission" (List.length subs) (List.length items);
      let id_of i = match List.nth items i with
        | Ok (id, _) -> id
        | Error e -> Alcotest.failf "item %d: %s" i (Protocol.error_message e)
      in
      (match List.nth items 0 with
      | Ok (_, `Fresh) -> ()
      | _ -> Alcotest.fail "first kernel should be fresh");
      (match List.nth items 2 with
      | Ok (id, `Coalesced) ->
          (* an in-flight dedup rides the live job *)
          check_int "coalesced onto item 0" (id_of 0) id
      | Ok (_, `Cached) ->
          (* a store hit materializes as a new, already-Done job *)
          ()
      | _ -> Alcotest.fail "duplicate should coalesce or hit the store");
      (match List.nth items 3 with
      | Error (Protocol.Minic_parse_error _) -> ()
      | _ -> Alcotest.fail "poison item should fail alone");
      (* drain the two real jobs through fetch_batch *)
      let ids = [ id_of 0; id_of 1 ] in
      let ok =
        wait_until (fun () ->
            List.for_all
              (fun item ->
                match item with
                | Ok ({ Protocol.state = Protocol.Done; _ }, Some _) -> true
                | _ -> false)
              (Client.fetch_batch c ids))
      in
      check "batched jobs complete" true ok;
      (* fetched batch results equal the single-fetch results *)
      List.iter
        (fun id ->
          match (Client.fetch_batch c [ id ], Client.rpc addr (Protocol.Fetch_result id)) with
          | [ Ok (_, Some batch_r) ], Protocol.Result (_, single_r) ->
              check_str "batch = single fetch report" single_r.Protocol.report
                batch_r.Protocol.report;
              check "batch = single fetch data" true
                (Json.equal batch_r.Protocol.data single_r.Protocol.data)
          | _ -> Alcotest.fail "fetch mismatch")
        ids;
      (* unknown ids come back as per-item errors *)
      match Client.fetch_batch c [ 9999 ] with
      | [ Error (Protocol.Unknown_job 9999) ] -> ()
      | _ -> Alcotest.fail "expected per-item unknown_job")

let test_client_timeout () =
  (* a listener that accepts nothing: connects sit in the backlog and
     never receive a byte back *)
  let path = Filename.temp_file "psaflow-timeout" ".sock" in
  Sys.remove path;
  let l = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind l (Unix.ADDR_UNIX path);
  Unix.listen l 8;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close l with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let addr = Protocol.Unix_path path in
  let c = Client.connect ~timeout_ms:150 addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (match Client.request c Protocol.Metrics with
  | exception Client.Protocol_failure (Protocol.Timeout _) -> ()
  | exception e -> Alcotest.failf "expected Timeout, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Timeout, got a response");
  let waited = Unix.gettimeofday () -. t0 in
  check "timed out near the deadline" true (waited >= 0.1 && waited < 5.0)

let test_connection_cap () =
  let config =
    { (Server.default_config ()) with Server.workers = 1; max_connections = 1 }
  in
  with_daemon ~config (fun addr ->
      (* with_daemon's ready probe briefly held the only slot; retry
         until its handler thread has released it and we are admitted *)
      let rec admit () =
        let c = Client.connect addr in
        match Client.request c Protocol.List_jobs with
        | Protocol.Jobs _ -> c
        | Protocol.Error Protocol.Server_busy ->
            Client.close c;
            Thread.delay 0.01;
            admit ()
        | _ ->
            Client.close c;
            Alcotest.fail "c1 should be admitted or busy"
      in
      let c1 = admit () in
      Fun.protect ~finally:(fun () -> Client.close c1) @@ fun () ->
      (* the second concurrent connection is answered server_busy *)
      let c2 = Client.connect addr in
      (match Client.request c2 Protocol.Metrics with
      | Protocol.Error Protocol.Server_busy -> ()
      | other ->
          Alcotest.failf "expected server_busy: %s"
            (Json.to_string (Protocol.response_to_json other)));
      Client.close c2;
      (* the rejection is visible in the daemon's metrics once the slot
         frees up *)
      Client.close c1;
      let freed =
        wait_until (fun () ->
            match Client.rpc addr Protocol.Metrics with
            | Protocol.Metrics_data m ->
                let m = Json.parse (Json.to_string m) in
                Option.bind (Json.member "connections_rejected" m)
                  Json.to_int_opt
                >= Some 1
            | _ -> false)
      in
      check "slot freed and rejection counted" true freed)

let test_job_listing_and_unknown_job () =
  with_daemon (fun addr ->
      (match Client.rpc addr (Protocol.Job_status 42) with
      | Protocol.Error (Protocol.Unknown_job 42) -> ()
      | _ -> Alcotest.fail "expected unknown_job");
      match Client.rpc addr Protocol.List_jobs with
      | Protocol.Jobs [] -> ()
      | _ -> Alcotest.fail "expected empty job list")

(* The client-minted request id must survive the full path — protocol
   frame, server, scheduler job, flow-exec root span — and come back
   attached to the retained trace served by svc_trace.  The first
   executed job of a fresh daemon is always sampled, so one submission
   suffices regardless of the sampling rate. *)
let test_request_id_trace_end_to_end () =
  with_daemon (fun addr ->
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let rid, job_id =
        match
          Client.submit c
            (Protocol.submission (Protocol.Inline (inline_kernel 91)))
        with
        | rid, Ok (job_id, `Fresh) -> (rid, job_id)
        | rid, Ok (_, _) -> Alcotest.failf "%s: expected a fresh job" rid
        | _, Error e -> Alcotest.fail (Protocol.error_message e)
      in
      check "client minted an id" true (String.length rid > 0);
      (match Client.wait_result addr job_id with
      | Ok (view, _) -> check "done" true (view.Protocol.state = Protocol.Done)
      | Error e -> Alcotest.fail e);
      let records =
        match Client.traces addr with
        | Json.List l -> l
        | j -> Alcotest.failf "traces: expected a list, got %s" (Json.to_string j)
      in
      let r =
        match
          List.find_opt
            (fun r ->
              Json.member "request_id" r = Some (Json.String rid))
            records
        with
        | Some r -> r
        | None ->
            Alcotest.failf "no retained trace carries request id %s (%d records)"
              rid (List.length records)
      in
      check "record names the executed job" true
        (Json.member "job_id" r = Some (Json.Int job_id));
      check "retained because sampled" true
        (Json.member "sampled" r = Some (Json.Bool true));
      (* the embedded Chrome document holds the scheduler lifecycle
         instants and the flow root span, all tagged with the id *)
      let events =
        match Option.bind (Json.member "trace" r) (Json.member "traceEvents") with
        | Some (Json.List evs) -> evs
        | _ -> Alcotest.fail "no embedded traceEvents"
      in
      let cat_of e =
        Option.value ~default:""
          (Option.bind (Json.member "cat" e) Json.to_string_opt)
      in
      let rid_of e =
        Option.bind
          (Option.bind (Json.member "args" e) (Json.member "request_id"))
          Json.to_string_opt
      in
      check "flow root span captured" true
        (List.exists (fun e -> cat_of e = "service" && rid_of e = Some rid)
           events);
      check "scheduler start+finish instants captured" true
        (List.length
           (List.filter
              (fun e -> cat_of e = "scheduler" && rid_of e = Some rid)
              events)
        >= 2);
      (* the sampled ring is also surfaced in svc-metrics *)
      match Client.rpc addr Protocol.Metrics with
      | Protocol.Metrics_data m ->
          let m = Json.parse (Json.to_string m) in
          let traces = Json.member "request_traces" m in
          check "metrics report a retained trace" true
            (match Option.bind traces (Json.member "sampled") with
            | Some (Json.Int n) -> n >= 1
            | _ -> false)
      | other ->
          Alcotest.failf "metrics: %s"
            (Json.to_string (Protocol.response_to_json other)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service"
    [
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "encode" `Quick test_json_encode;
          json_roundtrip;
          json_roundtrip_pretty;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "round-trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "versioning" `Quick test_protocol_versioning;
          Alcotest.test_case "v3 request ids and svc_trace" `Quick
            test_protocol_v3_trace_frames;
          batch_request_roundtrip;
          fetch_batch_roundtrip;
          Alcotest.test_case "batch limits" `Quick test_batch_limits;
          Alcotest.test_case "framing round-trip" `Quick test_framing_roundtrip;
          Alcotest.test_case "framing errors" `Quick test_framing_errors;
          Alcotest.test_case "framing over fds" `Quick test_framing_fd;
        ] );
      ( "store",
        [
          Alcotest.test_case "keying" `Quick test_store_dedup_key;
          Alcotest.test_case "lru eviction" `Quick test_store_lru;
          Alcotest.test_case "sharding" `Quick test_store_sharding;
          Alcotest.test_case "domain hammer" `Quick test_store_hammer;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "dedup" `Quick test_scheduler_dedup;
          Alcotest.test_case "backpressure + drain" `Quick
            test_scheduler_backpressure;
          Alcotest.test_case "failure isolation" `Quick test_scheduler_failure;
        ] );
      ( "req_trace",
        [
          Alcotest.test_case "deterministic sampling" `Quick
            test_req_trace_sampling;
          Alcotest.test_case "slow exemplars" `Quick
            test_req_trace_slow_exemplars;
          Alcotest.test_case "ring capacity" `Quick test_req_trace_ring_capacity;
        ] );
      ( "perf_history",
        [
          Alcotest.test_case "median" `Quick test_perf_history_median;
          Alcotest.test_case "jsonl roundtrip" `Quick
            test_perf_history_file_roundtrip;
          Alcotest.test_case "rolling-median gate" `Quick
            test_perf_history_gate;
        ] );
      ("metrics", [ Alcotest.test_case "registry" `Quick test_metrics_registry ]);
      ( "daemon",
        [
          Alcotest.test_case "empty daemon" `Quick
            test_job_listing_and_unknown_job;
          Alcotest.test_case "batch end-to-end" `Quick test_batch_end_to_end;
          Alcotest.test_case "client receive timeout" `Quick test_client_timeout;
          Alcotest.test_case "connection cap" `Quick test_connection_cap;
          Alcotest.test_case "request-id trace end-to-end" `Quick
            test_request_id_trace_end_to_end;
          Alcotest.test_case "end-to-end vs direct flow" `Slow test_end_to_end;
          Alcotest.test_case "explain and per-job trace" `Slow
            test_explain_and_trace;
        ] );
    ]
