(** Tests for the observability library (lib/obs): histogram hardening
    in the metrics registry, span-tracer determinism and nesting, the
    decision-provenance records the flow engine emits, and the leveled
    logger. *)

module Attr = Flow_obs.Attr
module Log = Flow_obs.Log
module Trace = Flow_obs.Trace
module Metrics = Flow_obs.Metrics
module Provenance = Flow_obs.Provenance
module Json = Flow_service.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Metrics: counters, gauges, snapshot order                           *)
(* ------------------------------------------------------------------ *)

let test_counters_and_gauges () =
  let m = Metrics.create () in
  Metrics.incr m "reqs";
  Metrics.incr ~by:4 m "reqs";
  Metrics.set_gauge m "depth" 3.5;
  Metrics.set_gauge m "depth" 2.0;
  check_int "counter accumulates" 5 (Metrics.counter_value m "reqs");
  check "gauge holds last value" true (Metrics.gauge_value m "depth" = 2.0);
  check_int "missing counter reads 0" 0 (Metrics.counter_value m "nope");
  Metrics.observe m "lat" 0.5;
  check "snapshot preserves registration order" true
    (List.map fst (Metrics.snapshot m) = [ "reqs"; "depth"; "lat" ]);
  Metrics.reset m;
  check "reset empties the registry" true (Metrics.snapshot m = [])

(* ------------------------------------------------------------------ *)
(* Metrics: histogram hardening                                        *)
(* ------------------------------------------------------------------ *)

let finite_summary (s : Metrics.summary) =
  List.for_all Float.is_finite
    [ s.s_sum; s.s_mean; s.s_min; s.s_max; s.s_p50; s.s_p90; s.s_p99 ]

let test_histogram_empty () =
  (* percentile queries are total: an empty histogram answers, it does
     not raise or divide by zero *)
  let h = Metrics.Hist.create () in
  check "empty hist percentile" true (Metrics.Hist.percentile h 50.0 = 0.0);
  check "empty hist p99" true (Metrics.Hist.percentile h 99.0 = 0.0);
  (* the empty summary is all zeros, never infinities/NaN *)
  check "empty summary finite" true (finite_summary Metrics.empty_summary);
  check_int "empty summary count" 0 Metrics.empty_summary.s_count;
  check "empty summary min is 0, not +inf" true
    (Metrics.empty_summary.s_min = 0.0);
  let m = Metrics.create () in
  check "unregistered histogram has no summary" true
    (Metrics.histogram_summary m "lat" = None)

let test_histogram_single_sample () =
  let m = Metrics.create () in
  Metrics.observe m "lat" 0.25;
  match Metrics.histogram_summary m "lat" with
  | None -> Alcotest.fail "single-sample histogram has no summary"
  | Some s ->
      check_int "count" 1 s.s_count;
      check "all fields finite" true (finite_summary s);
      check "p50 = the sample" true (s.s_p50 = 0.25);
      check "p90 = the sample" true (s.s_p90 = 0.25);
      check "p99 = the sample" true (s.s_p99 = 0.25);
      check "min = max = the sample" true (s.s_min = 0.25 && s.s_max = 0.25)

let test_histogram_nan_dropped () =
  let m = Metrics.create () in
  Metrics.observe m "lat" Float.nan;
  check "a lone NaN never registers" true
    (Metrics.histogram_summary m "lat" = None);
  Metrics.observe m "lat" 1.0;
  Metrics.observe m "lat" Float.nan;
  Metrics.observe m "lat" 3.0;
  match Metrics.histogram_summary m "lat" with
  | None -> Alcotest.fail "histogram lost"
  | Some s ->
      check_int "NaN observations dropped" 2 s.s_count;
      check "summary stays finite" true (finite_summary s);
      check "sum unpoisoned" true (s.s_sum = 4.0)

(* Log-bucketed percentiles carry a bounded relative error: the answer
   is a bucket's geometric midpoint, within a factor [gamma] of the
   exact nearest-rank percentile (one extra gamma of slack absorbs
   float rounding at bucket boundaries). *)
let within_gamma exact approx =
  let tol = Metrics.Hist.gamma *. Metrics.Hist.gamma in
  approx >= exact /. tol && approx <= exact *. tol

let test_histogram_percentiles () =
  let m = Metrics.create () in
  for i = 1 to 100 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  match Metrics.histogram_summary m "lat" with
  | None -> Alcotest.fail "histogram lost"
  | Some s ->
      check "p50 within bucket error" true (within_gamma 50.0 s.s_p50);
      check "p90 within bucket error" true (within_gamma 90.0 s.s_p90);
      check "p99 within bucket error" true (within_gamma 99.0 s.s_p99);
      check "mean exact" true (s.s_mean = 50.5);
      check "min/max exact" true (s.s_min = 1.0 && s.s_max = 100.0);
      (* percentiles never step outside the observed range *)
      check "p50 in range" true (s.s_p50 >= 1.0 && s.s_p50 <= 100.0)

(* ------------------------------------------------------------------ *)
(* Metrics: histogram merge                                            *)
(* ------------------------------------------------------------------ *)

let test_histogram_merge () =
  let a = Metrics.Hist.create () and b = Metrics.Hist.create () in
  List.iter (Metrics.Hist.observe a) [ 1.0; 2.0; 3.0 ];
  List.iter (Metrics.Hist.observe b) [ 100.0; 200.0 ];
  Metrics.Hist.merge ~into:a b;
  let s = Metrics.Hist.summary a in
  check_int "merged count" 5 s.s_count;
  check "merged sum" true (s.s_sum = 306.0);
  check "merged min/max span both sources" true
    (s.s_min = 1.0 && s.s_max = 200.0);
  (* the source histogram is untouched *)
  check_int "source count unchanged" 2 (Metrics.Hist.summary b).s_count;
  (* merging an empty histogram is the identity *)
  Metrics.Hist.merge ~into:a (Metrics.Hist.create ());
  check_int "empty merge is identity" 5 (Metrics.Hist.summary a).s_count

(* exact nearest-rank percentile over raw samples, the reference the
   sketch approximates *)
let exact_percentile samples p =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  let rank =
    max 1 (min n (int_of_float (Float.ceil (p /. 100.0 *. float_of_int n))))
  in
  a.(rank - 1)

let arb_samples =
  QCheck.make
    ~print:(fun (xs, ys) ->
      Printf.sprintf "%d + %d samples" (List.length xs) (List.length ys))
    QCheck.Gen.(
      let samples =
        list_size (int_range 1 200)
          (map (fun n -> float_of_int n /. 16.0) (int_range 1 160_000))
      in
      pair samples samples)

(* Merging per-thread sketches must answer percentiles within the
   bucket's relative-error bound of the exact pooled nearest-rank
   value — the property the load runner's merged latency sketch relies
   on. *)
let merged_percentile_prop =
  Helpers.qtest ~count:200 "merged histogram percentiles within gamma bound"
    arb_samples (fun (xs, ys) ->
      let hx = Metrics.Hist.create () and hy = Metrics.Hist.create () in
      List.iter (Metrics.Hist.observe hx) xs;
      List.iter (Metrics.Hist.observe hy) ys;
      Metrics.Hist.merge ~into:hx hy;
      List.for_all
        (fun p ->
          within_gamma (exact_percentile (xs @ ys) p)
            (Metrics.Hist.percentile hx p))
        [ 50.0; 90.0; 99.0 ])

(* ------------------------------------------------------------------ *)
(* Tracer: span mechanics                                              *)
(* ------------------------------------------------------------------ *)

let test_span_basics () =
  Trace.start ();
  let r =
    Trace.with_span ~cat:"t" ~args:[ ("k", Attr.Int 1) ] "outer" (fun () ->
        Trace.with_span ~cat:"t" "inner" (fun () -> ());
        Trace.add_args [ ("extra", Attr.Bool true) ];
        17)
  in
  Trace.instant ~cat:"t" "mark";
  Trace.stop ();
  check_int "with_span returns f's value" 17 r;
  let spans = Trace.completed_spans () in
  check_int "three events recorded" 3 (List.length spans);
  check_int "count by cat" 3 (Trace.count ~cat:"t" ());
  check_int "count by name" 1 (Trace.count ~name:"inner" ~cat:"t" ());
  let find n = List.find (fun s -> s.Trace.sp_name = n) spans in
  let outer = find "outer" and inner = find "inner" in
  check "inner nests inside outer" true
    (outer.Trace.sp_begin < inner.Trace.sp_begin
    && inner.Trace.sp_end < outer.Trace.sp_end);
  check "add_args lands on the open span" true
    (List.mem_assoc "extra" outer.Trace.sp_args
    && List.mem_assoc "k" outer.Trace.sp_args)

let test_span_closes_on_raise () =
  Trace.start ();
  (try Trace.with_span "boom" (fun () -> failwith "deliberate")
   with Failure _ -> ());
  Trace.stop ();
  match Trace.completed_spans () with
  | [ sp ] ->
      check "span closed despite the raise" true
        (sp.Trace.sp_end > sp.Trace.sp_begin)
  | spans -> Alcotest.failf "expected one span, got %d" (List.length spans)

let test_disabled_records_nothing () =
  Trace.start ();
  Trace.stop ();
  check "disabled" true (not (Trace.is_enabled ()));
  check_int "disabled with_span is just f ()" 42
    (Trace.with_span "ghost" (fun () -> 42));
  Trace.instant "ghost-mark";
  Trace.add_args [ ("ghost", Attr.Bool true) ];
  check_int "nothing recorded while disabled" 0
    (List.length (Trace.completed_spans ()))

(* ------------------------------------------------------------------ *)
(* Tracer: request recordings                                          *)
(* ------------------------------------------------------------------ *)

let test_request_recording_without_global () =
  (* recordings capture spans while the global tracer is off — the
     always-on daemon path *)
  Trace.start ();
  Trace.stop ();
  Trace.request_begin ();
  Trace.with_span ~cat:"rq" "outer" (fun () ->
      Trace.with_span ~cat:"rq" "inner" (fun () -> ());
      Trace.add_args [ ("k", Attr.Int 7) ]);
  Trace.instant ~cat:"rq" "mark";
  let spans = Trace.request_end () in
  check_int "recording captured all three events" 3 (List.length spans);
  check_int "global buffer untouched" 0 (List.length (Trace.completed_spans ()));
  let find n = List.find (fun s -> s.Trace.sp_name = n) spans in
  let outer = find "outer" and inner = find "inner" in
  check "nesting preserved in recording" true
    (outer.Trace.sp_begin < inner.Trace.sp_begin
    && inner.Trace.sp_end < outer.Trace.sp_end);
  check "add_args lands on the recorded open span" true
    (List.mem_assoc "k" outer.Trace.sp_args);
  (* the recording export is valid Chrome JSON *)
  match Json.member "traceEvents" (Json.parse (Trace.export_spans ~normalize:true spans)) with
  | Some (Json.List evs) -> check_int "exported events" 3 (List.length evs)
  | _ -> Alcotest.fail "recording export is not a Chrome trace document"

let test_request_recording_alongside_global () =
  (* with the global tracer on, spans land in both sinks and ending the
     recording does not disturb the global buffer *)
  Trace.start ();
  Trace.request_begin ();
  Trace.with_span ~cat:"both" "shared" (fun () -> ());
  let recorded = Trace.request_end () in
  Trace.instant ~cat:"both" "after-recording";
  Trace.stop ();
  check_int "recording got the span" 1 (List.length recorded);
  check_int "global kept both events" 2
    (List.length (Trace.completed_spans ()))

let test_request_recording_empty_and_unmatched () =
  Trace.start ();
  Trace.stop ();
  Trace.request_begin ();
  check "empty recording yields no spans" true (Trace.request_end () = []);
  (* request_end without request_begin is harmless *)
  check "unmatched request_end is empty" true (Trace.request_end () = []);
  (* spans after the recording ended are not captured anywhere *)
  Trace.with_span ~cat:"rq" "late" (fun () -> ());
  Trace.request_begin ();
  check "recording only sees spans opened inside it" true
    (Trace.request_end () = [])

let test_export_shape () =
  Trace.start ();
  Trace.with_span ~cat:"t" ~args:[ ("q", Attr.String "a\"b") ] "e1" (fun () ->
      Trace.instant ~cat:"t" "m1");
  Trace.stop ();
  let doc = Json.parse (Trace.export ()) in
  (match Json.member "traceEvents" doc with
  | Some (Json.List evs) -> check_int "two events" 2 (List.length evs)
  | _ -> Alcotest.fail "no traceEvents array");
  (* normalized export: timestamps are the global sequence numbers *)
  let doc = Json.parse (Trace.export ~normalize:true ()) in
  match Json.member "traceEvents" doc with
  | Some (Json.List (first :: _)) ->
      check "normalized ts is the open seq" true
        (Json.member "ts" first = Some (Json.Float 1.0));
      check "normalized dur spans the child instant" true
        (Json.member "dur" first = Some (Json.Float 2.0))
  | _ -> Alcotest.fail "no traceEvents array"

(* ------------------------------------------------------------------ *)
(* Tracer: spans are properly nested (qcheck)                          *)
(* ------------------------------------------------------------------ *)

type tree = Node of tree list

let rec tree_size (Node kids) =
  1 + List.fold_left (fun acc k -> acc + tree_size k) 0 kids

let gen_tree =
  QCheck.Gen.(
    sized
      (fix (fun self n ->
           if n = 0 then return (Node [])
           else
             let* kids = list_size (int_bound 3) (self (n / 2)) in
             return (Node kids))))

let arb_tree =
  QCheck.make
    ~print:(fun t -> Printf.sprintf "tree of %d nodes" (tree_size t))
    gen_tree

let rec exec_tree (Node kids) =
  Trace.with_span ~cat:"prop" "node" (fun () -> List.iter exec_tree kids)

(* Any execution shape must yield well-formed intervals that pairwise
   either nest or are disjoint — never partially overlap. *)
let nesting_prop =
  Helpers.qtest ~count:100 "span intervals nest or are disjoint" arb_tree
    (fun t ->
      Trace.start ();
      exec_tree t;
      Trace.stop ();
      let spans = Trace.completed_spans () in
      let well_formed s = s.Trace.sp_begin < s.Trace.sp_end in
      let nest_or_disjoint a b =
        let ab, ae = (a.Trace.sp_begin, a.Trace.sp_end) in
        let bb, be = (b.Trace.sp_begin, b.Trace.sp_end) in
        ae < bb || be < ab (* disjoint *)
        || (ab < bb && be < ae) (* a contains b *)
        || (bb < ab && ae < be)
        (* b contains a *)
      in
      List.length spans = tree_size t
      && List.for_all well_formed spans
      && List.for_all
           (fun a ->
             List.for_all (fun b -> a == b || nest_or_disjoint a b) spans)
           spans)

(* ------------------------------------------------------------------ *)
(* Golden trace: a traced flow run is byte-deterministic               *)
(* ------------------------------------------------------------------ *)

let bezier = List.nth Benchmarks.Registry.all 2 (* smallest benchmark *)

(* One informed flow run under the tracer, pinned to a deterministic
   execution (one pool worker, cold profile cache), returning the
   normalized export plus the outcome.  The context is built by the
   caller: statement ids are assigned by a global parser counter, so
   byte-determinism holds per parsed workload (each [psaflow run]
   invocation is a fresh process and parses identically). *)
let traced_informed_run ctx =
  let saved = !Dse.Pool.override in
  Dse.Pool.override := Some 1;
  Fun.protect
    ~finally:(fun () ->
      Dse.Pool.override := saved;
      Trace.stop ())
  @@ fun () ->
  Minic_interp.Profile_cache.clear ();
  Trace.start ();
  let outcome = Psa.Std_flow.run_informed ctx in
  Trace.stop ();
  (Trace.export ~normalize:true (), outcome)

let test_trace_golden_deterministic () =
  let ctx = Benchmarks.Bench_app.context bezier in
  let exp1, _ = traced_informed_run ctx in
  let exp2, outcome = traced_informed_run ctx in
  check_str "normalized exports byte-identical across runs" exp1 exp2;
  (* valid Chrome trace-event JSON with a non-empty event array *)
  (match Json.member "traceEvents" (Json.parse exp2) with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "export is not a Chrome trace document");
  (* structural floor: the instrumentation actually fired everywhere *)
  check "at least one branch decision span" true
    (Trace.count ~cat:"branch" () >= 1);
  check "at least three analysis spans" true
    (Trace.count ~cat:"analysis" () >= 3);
  check "every DSE candidate traced" true (Trace.count ~cat:"dse" () >= 1);
  check "task spans present" true (Trace.count ~cat:"task" () >= 1);
  (* the same run recorded its provenance into the contexts *)
  let decisions = Psa.Context.collect_decisions outcome.contexts in
  check "decisions recorded" true (decisions <> []);
  match
    List.find_opt
      (fun (d : Provenance.decision) -> d.branch = "A")
      decisions
  with
  | None -> Alcotest.fail "no branch A decision"
  | Some d ->
      check_str "informed branch A uses fig3" "fig3" d.strategy;
      check "numeric evidence attached" true
        (List.exists
           (fun (_, v) -> match v with Attr.Float _ -> true | _ -> false)
           d.evidence);
      check "fig3 evidence names the intensity fact" true
        (List.mem_assoc "flops_per_byte" d.evidence)

(* ------------------------------------------------------------------ *)
(* Provenance rendering                                                *)
(* ------------------------------------------------------------------ *)

let test_selection_to_string () =
  let d selected reason =
    { Provenance.branch = "A"; strategy = "s"; selected; reason; evidence = [] }
  in
  check_str "stop with reason" "stop (budget exhausted)"
    (Provenance.selection_to_string (d [] (Some "budget exhausted")));
  check_str "bare stop" "stop" (Provenance.selection_to_string (d [] None));
  check_str "multi-path" "gpu, fpga"
    (Provenance.selection_to_string (d [ "gpu"; "fpga" ] None))

let test_render () =
  let d =
    {
      Provenance.branch = "A";
      strategy = "fig3";
      selected = [ "fpga" ];
      reason = None;
      evidence =
        [ ("compute_bound", Attr.Bool true); ("flops_per_byte", Attr.Float 12.5) ];
    }
  in
  check_str "rendered paragraph"
    ("branch A [fig3]: selected fpga\n"
   ^ "  compute_bound            = true\n"
   ^ "  flops_per_byte           = 12.5\n")
    (Provenance.render d);
  check_str "render_all concatenates" (Provenance.render d ^ Provenance.render d)
    (Provenance.render_all [ d; d ])

(* ------------------------------------------------------------------ *)
(* Logger                                                              *)
(* ------------------------------------------------------------------ *)

let test_log_of_string () =
  check "debug" true (Log.of_string " DEBUG " = Some Log.Debug);
  check "warning alias" true (Log.of_string "warning" = Some Log.Warn);
  check "off alias" true (Log.of_string "off" = Some Log.Quiet);
  check "info" true (Log.of_string "info" = Some Log.Info);
  check "unknown" true (Log.of_string "loud" = None)

let test_log_levels_and_sink () =
  let saved = Log.level () in
  let got = ref [] in
  Log.set_sink (fun ~level msg -> got := (level, msg) :: !got);
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink Log.default_sink;
      Log.set_level saved)
  @@ fun () ->
  Log.set_level Log.Info;
  check "info enabled" true (Log.enabled Log.Info);
  check "debug disabled" true (not (Log.enabled Log.Debug));
  Log.debugf "dropped %d" 1;
  Log.infof "kept %d" 2;
  Log.errorf "kept too";
  check "level filter applied" true
    (List.rev !got = [ (Log.Info, "kept 2"); (Log.Error, "kept too") ]);
  got := [];
  Log.set_level Log.Quiet;
  check "quiet silences errors" true (not (Log.enabled Log.Error));
  Log.errorf "silenced";
  check "nothing emitted under quiet" true (!got = [])

(* ------------------------------------------------------------------ *)
(* Hardened environment knobs                                          *)
(* ------------------------------------------------------------------ *)

module Env = Flow_obs.Env

(* A scratch knob name nothing else reads; [Unix.putenv] has no unset,
   so tests leave it set to a valid value. *)
let knob = "PSAFLOW_TEST_KNOB"

let with_warnings f =
  let saved_level = Log.level () in
  let warnings = ref [] in
  Log.set_sink (fun ~level msg -> if level = Log.Warn then warnings := msg :: !warnings);
  Log.set_level Log.Warn;
  Env.reset_warnings ();
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink Log.default_sink;
      Log.set_level saved_level;
      Env.reset_warnings ())
    (fun () -> f warnings)

let test_env_parsing () =
  with_warnings @@ fun warnings ->
  Unix.putenv knob "  12 ";
  check "whitespace-tolerant parse" true
    (Env.int_opt ~name:knob ~min:1 () = Some 12);
  check "default ignored when set" true
    (Env.int ~name:knob ~default:99 ~min:1 () = 12);
  Unix.putenv knob "not-a-number";
  check "non-integer ignored" true (Env.int_opt ~name:knob ~min:1 () = None);
  check "non-integer falls back to default" true
    (Env.int ~name:knob ~default:7 ~min:1 () = 7);
  check "unset knob reads None" true
    (Env.int_opt ~name:"PSAFLOW_TEST_KNOB_UNSET" ~min:1 () = None);
  check "warned about the bad value" true (!warnings <> [])

let test_env_clamping () =
  with_warnings @@ fun warnings ->
  List.iter
    (fun bad ->
      Unix.putenv knob bad;
      check
        (Printf.sprintf "%S clamps to the minimum" bad)
        true
        (Env.int_opt ~name:knob ~min:1 () = Some 1))
    [ "0"; "-3"; "-2147483648" ];
  Unix.putenv knob "2";
  check "minimum itself passes" true (Env.int_opt ~name:knob ~min:2 () = Some 2);
  check "clamping warned" true (!warnings <> [])

let test_env_warn_once () =
  with_warnings @@ fun warnings ->
  Unix.putenv knob "0";
  for _ = 1 to 5 do
    ignore (Env.int ~name:knob ~default:4 ~min:1 ())
  done;
  check_int "one warning for five reads" 1 (List.length !warnings);
  Env.reset_warnings ();
  ignore (Env.int ~name:knob ~default:4 ~min:1 ());
  check_int "warning re-armed by reset" 2 (List.length !warnings);
  Unix.putenv knob "3"

(* The production knobs go through the hardened parser: a zero/negative
   value must clamp, not crash or propagate. *)
let test_env_production_knobs () =
  with_warnings @@ fun _ ->
  Unix.putenv "PSAFLOW_JOBS" "0";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "PSAFLOW_JOBS" "1")
    (fun () ->
      check_int "PSAFLOW_JOBS=0 clamps to 1 job" 1 (Dse.Pool.jobs ()))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_counters_and_gauges;
          Alcotest.test_case "empty histogram" `Quick test_histogram_empty;
          Alcotest.test_case "single-sample histogram" `Quick
            test_histogram_single_sample;
          Alcotest.test_case "NaN observations dropped" `Quick
            test_histogram_nan_dropped;
          Alcotest.test_case "nearest-rank percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          merged_percentile_prop;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span basics" `Quick test_span_basics;
          Alcotest.test_case "span closes on raise" `Quick
            test_span_closes_on_raise;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "export shape" `Quick test_export_shape;
          nesting_prop;
          Alcotest.test_case "request recording without global tracer" `Quick
            test_request_recording_without_global;
          Alcotest.test_case "request recording alongside global tracer" `Quick
            test_request_recording_alongside_global;
          Alcotest.test_case "request recording edge cases" `Quick
            test_request_recording_empty_and_unmatched;
        ] );
      ( "golden",
        [
          Alcotest.test_case "traced flow run is byte-deterministic" `Slow
            test_trace_golden_deterministic;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "selection rendering" `Quick
            test_selection_to_string;
          Alcotest.test_case "paragraph rendering" `Quick test_render;
        ] );
      ( "log",
        [
          Alcotest.test_case "of_string" `Quick test_log_of_string;
          Alcotest.test_case "levels and sink" `Quick test_log_levels_and_sink;
        ] );
      ( "env",
        [
          Alcotest.test_case "parsing" `Quick test_env_parsing;
          Alcotest.test_case "clamping" `Quick test_env_clamping;
          Alcotest.test_case "warn once" `Quick test_env_warn_once;
          Alcotest.test_case "production knobs" `Quick
            test_env_production_knobs;
        ] );
    ]
