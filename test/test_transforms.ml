(** Tests for the source-to-source transforms: hotspot extraction,
    reduction-dependency removal, single-precision conversion, unrolling
    and OpenMP parallelisation. *)

open Transforms

let parse = Minic.Parser.parse_program

let extract_fixture () =
  let p = parse Helpers.vec_scale_src in
  let h = Option.get (Analysis.Hotspot.detect p) in
  (p, Extract.hotspot p ~loop_sid:h.loop_sid)

let extract_tests =
  [
    Alcotest.test_case "kernel function created with call site" `Quick
      (fun () ->
        let _, ex = extract_fixture () in
        Alcotest.(check string) "name" Extract.default_kernel_name
          ex.kernel_name;
        Alcotest.(check bool) "kernel exists" true
          (Minic.Ast.find_func_opt ex.program ex.kernel_name <> None);
        Alcotest.(check bool) "main calls it" true
          (List.mem ex.kernel_name (Artisan.Query.callees ex.program "main")));
    Alcotest.test_case "free variables become parameters" `Quick (fun () ->
        let _, ex = extract_fixture () in
        let names = List.map snd ex.params in
        Alcotest.(check bool) "n passed" true (List.mem "n" names);
        Alcotest.(check bool) "a passed" true (List.mem "a" names);
        Alcotest.(check bool) "b passed" true (List.mem "b" names);
        Alcotest.(check bool) "i private" false (List.mem "i" names));
    Alcotest.test_case "arrays become pointer parameters" `Quick (fun () ->
        let _, ex = extract_fixture () in
        let ty name = fst (List.find (fun (_, v) -> v = name) ex.params) in
        Alcotest.(check bool) "a is double*" true
          (ty "a" = Minic.Ast.Tptr Minic.Ast.Tdouble);
        Alcotest.(check bool) "n is int" true (ty "n" = Minic.Ast.Tint));
    Alcotest.test_case "extraction preserves behaviour" `Quick (fun () ->
        let p, ex = extract_fixture () in
        let r0 = Minic_interp.Eval.run p in
        let r1 = Minic_interp.Eval.run ex.program in
        Alcotest.(check string) "same output" r0.output r1.output);
    Alcotest.test_case "extraction preserves typing" `Quick (fun () ->
        let _, ex = extract_fixture () in
        Minic.Typecheck.check_program ex.program);
    Alcotest.test_case "loop keeps its node id inside the kernel" `Quick
      (fun () ->
        let _, ex = extract_fixture () in
        let ids = Minic.Ast.all_stmt_ids ex.program in
        Alcotest.(check bool) "hotspot id survives" true
          (List.mem ex.loop_sid ids);
        Alcotest.(check bool) "ids unique" false
          (Minic.Ast.has_duplicate_ids ex.program));
    Alcotest.test_case "refuses loops writing free scalars" `Quick (fun () ->
        let src =
          {|
int main() {
  double s = 0.0;
  double a[8];
  for (int i = 0; i < 8; i++) {
    s += a[i];
  }
  print_float(s);
  return 0;
}
|}
        in
        let p = parse src in
        let loop =
          (List.hd Artisan.Query.(stmts_in ~where:is_for p "main")).stmt
        in
        match Extract.hotspot p ~loop_sid:loop.sid with
        | exception Extract.Not_extractable _ -> ()
        | _ -> Alcotest.fail "expected Not_extractable");
    Alcotest.test_case "kernel calls repeat per driver iteration" `Quick
      (fun () ->
        let src =
          {|
int main() {
  int n = 16;
  double a[n];
  for (int i = 0; i < n; i++) { a[i] = rand01(); }
  for (int t = 0; t < 4; t++) {
    for (int i = 0; i < n; i++) {
      a[i] = sqrt(a[i]) + 0.01;
    }
    a[0] = 0.5;
  }
  print_float(a[1]);
  return 0;
}
|}
        in
        let p = parse src in
        let h = Option.get (Analysis.Hotspot.detect p) in
        let ex = Extract.hotspot p ~loop_sid:h.loop_sid in
        let r = Minic_interp.Eval.run ~focus:ex.kernel_name ex.program in
        match r.profile.kernel with
        | Some k -> Alcotest.(check int) "4 calls" 4 k.calls
        | None -> Alcotest.fail "no kernel obs");
  ]

let reduction_tests =
  [
    Alcotest.test_case "histogram loop gets annotated" `Quick (fun () ->
        let p = parse Helpers.histogram_src in
        let p', count = Reduction.remove_array_dependencies p ~kernel:"hist" in
        Alcotest.(check int) "one loop annotated" 1 count;
        let loop =
          (List.hd Artisan.Query.(stmts_in ~where:is_for p' "hist")).stmt
        in
        Alcotest.(check (list string)) "clause" [ "+:bins[]" ]
          (Reduction.clauses_of loop));
    Alcotest.test_case "independent loop untouched" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let _, count = Reduction.remove_array_dependencies p ~kernel:"work" in
        Alcotest.(check int) "nothing annotated" 0 count);
    Alcotest.test_case "annotation preserves behaviour" `Quick (fun () ->
        let p = parse Helpers.histogram_src in
        let p', _ = Reduction.remove_array_dependencies p ~kernel:"hist" in
        Alcotest.(check string) "same output"
          (Minic_interp.Eval.run p).output
          (Minic_interp.Eval.run p').output);
    Alcotest.test_case "scalar reduction clause spelling" `Quick (fun () ->
        let d =
          {
            Analysis.Dependence.var = "acc";
            kind = Analysis.Dependence.Scalar_reduction Minic.Ast.MulEq;
            sid = 0;
          }
        in
        Alcotest.(check string) "clause" "*:acc" (Reduction.clause d));
  ]

let sp_tests =
  [
    Alcotest.test_case "sp math renames calls in kernel only" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let p' = Sp_math.employ_sp_math p ~kernel:"work" in
        let work =
          Minic.Pretty.program_to_string
            { p' with Minic.Ast.funcs = [ Minic.Ast.find_func p' "work" ] }
        in
        Alcotest.(check bool) "expf in kernel" true
          (Astring_contains.contains work "expf("));
    Alcotest.test_case "sp literals get f suffix" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let p' = Sp_math.employ_sp_literals p ~kernel:"work" in
        let s = Minic.Pretty.program_to_string p' in
        Alcotest.(check bool) "0.5f present" true
          (Astring_contains.contains s "0.5f"));
    Alcotest.test_case "type demotion rewrites params and decls" `Quick
      (fun () ->
        let p = parse Helpers.kernel_src in
        let p' = Sp_math.demote_kernel_types p ~kernel:"work" in
        let f = Minic.Ast.find_func p' "work" in
        Alcotest.(check bool) "param float*" true
          ((List.hd f.fparams).ptyp = Minic.Ast.Tptr Minic.Ast.Tfloat));
    Alcotest.test_case "full sp conversion is numerically faithful" `Quick
      (fun () ->
        let p = parse Helpers.kernel_src in
        let p' = Sp_math.to_single_precision p ~kernel:"work" in
        Alcotest.(check string) "same output"
          (Minic_interp.Eval.run p).output
          (Minic_interp.Eval.run p').output);
    Alcotest.test_case "gpu intrinsics rewrite sp math calls" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let p' = Sp_math.employ_sp_math p ~kernel:"work" in
        let p'', n = Sp_math.employ_gpu_intrinsics p' ~kernel:"work" in
        Alcotest.(check int) "one call specialised" 1 n;
        Alcotest.(check bool) "__expf present" true
          (Astring_contains.contains
             (Minic.Pretty.program_to_string p'')
             "__expf("));
    Alcotest.test_case "intrinsics do not apply to double math" `Quick
      (fun () ->
        let p = parse Helpers.kernel_src in
        let _, n = Sp_math.employ_gpu_intrinsics p ~kernel:"work" in
        Alcotest.(check int) "nothing specialised" 0 n);
  ]

let unroll_tests =
  [
    Alcotest.test_case "full unroll replicates the body" `Quick (fun () ->
        let src =
          {|
void k(double* a) {
  for (int i = 0; i < 16; i++) {
    for (int j = 0; j < 4; j++) {
      a[j] += 1.0;
    }
  }
}
int main() { double a[4]; k(a); print_float(a[0]); return 0; }
|}
        in
        let p = parse src in
        let p', n = Unroll.unroll_fixed_inner_loops p ~kernel:"k" in
        Alcotest.(check int) "one loop unrolled" 1 n;
        Alcotest.(check int) "only outer remains" 1
          (List.length Artisan.Query.(stmts_in ~where:is_for p' "k"));
        Alcotest.(check string) "same behaviour"
          (Minic_interp.Eval.run p).output
          (Minic_interp.Eval.run p').output;
        Alcotest.(check bool) "ids unique" false
          (Minic.Ast.has_duplicate_ids p'));
    Alcotest.test_case "unroll substitutes the index constant" `Quick
      (fun () ->
        let src =
          {|
void k(double* a) {
  for (int i = 0; i < 8; i++) {
    for (int j = 0; j < 3; j++) {
      a[j] = (double)j;
    }
  }
}
int main() { double a[3]; k(a); print_float(a[2]); return 0; }
|}
        in
        let p = parse src in
        let p', _ = Unroll.unroll_fixed_inner_loops p ~kernel:"k" in
        let s = Minic.Pretty.program_to_string p' in
        Alcotest.(check bool) "a[2] literal present" true
          (Astring_contains.contains s "a[2]");
        Alcotest.(check (float 1e-9)) "value" 2.0
          (float_of_string
             (List.hd
                (String.split_on_char '\n' (Minic_interp.Eval.run p').output))));
    Alcotest.test_case "runtime bounds are not unrolled" `Quick (fun () ->
        let src =
          {|
void k(double* a, int m) {
  for (int i = 0; i < 8; i++) {
    for (int j = 0; j < m; j++) {
      a[j] += 1.0;
    }
  }
}
int main() { double a[4]; k(a, 4); return 0; }
|}
        in
        let p = parse src in
        let _, n = Unroll.unroll_fixed_inner_loops p ~kernel:"k" in
        Alcotest.(check int) "nothing unrolled" 0 n);
    Alcotest.test_case "threshold respected" `Quick (fun () ->
        let src =
          {|
void k(double* a) {
  for (int i = 0; i < 4; i++) {
    for (int j = 0; j < 100; j++) {
      a[0] += 1.0;
    }
  }
}
int main() { double a[1]; k(a); return 0; }
|}
        in
        let p = parse src in
        let _, n =
          Unroll.unroll_fixed_inner_loops ~threshold:64 p ~kernel:"k"
        in
        Alcotest.(check int) "too big to unroll" 0 n);
    Alcotest.test_case "annotate and read back factor" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let loop =
          (List.hd Artisan.Query.(stmts_in ~where:is_for p "work")).stmt
        in
        let p' = Unroll.annotate_unroll ~target:loop.sid ~factor:8 p in
        Alcotest.(check int) "factor read back" 8
          (Unroll.kernel_unroll_factor p' ~kernel:"work");
        let p'' = Unroll.annotate_unroll ~target:loop.sid ~factor:16 p' in
        Alcotest.(check int) "updated" 16
          (Unroll.kernel_unroll_factor p'' ~kernel:"work"));
  ]

let omp_tests =
  [
    Alcotest.test_case "parallel loop gets the pragma" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let p' = Omp_pragmas.parallelize_kernel_loop p ~kernel:"work" in
        let s = Minic.Pretty.program_to_string p' in
        Alcotest.(check bool) "pragma present" true
          (Astring_contains.contains s "#pragma omp parallel for"));
    Alcotest.test_case "num_threads clause set and read back" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let p' =
          Omp_pragmas.parallelize_kernel_loop ~num_threads:16 p ~kernel:"work"
        in
        Alcotest.(check (option int)) "16 threads" (Some 16)
          (Omp_pragmas.annotated_num_threads p' ~kernel:"work"));
    Alcotest.test_case "reduction clauses derived from annotation" `Quick
      (fun () ->
        let p = parse Helpers.histogram_src in
        let p, _ = Reduction.remove_array_dependencies p ~kernel:"hist" in
        let p' = Omp_pragmas.parallelize_kernel_loop p ~kernel:"hist" in
        let s = Minic.Pretty.program_to_string p' in
        Alcotest.(check bool) "array-section reduction" true
          (Astring_contains.contains s "reduction(+:bins[:])"));
    Alcotest.test_case "sequential loop rejected" `Quick (fun () ->
        let p = parse Helpers.prefix_src in
        match Omp_pragmas.parallelize_kernel_loop p ~kernel:"prefix" with
        | exception Omp_pragmas.Not_parallel _ -> ()
        | _ -> Alcotest.fail "expected Not_parallel");
    Alcotest.test_case "pragma does not change behaviour" `Quick (fun () ->
        let p = parse Helpers.kernel_src in
        let p' = Omp_pragmas.parallelize_kernel_loop p ~kernel:"work" in
        Alcotest.(check string) "same output"
          (Minic_interp.Eval.run p).output
          (Minic_interp.Eval.run p').output);
  ]

(* ------------------------------------------------------------------ *)
(* Observational equivalence of the unroll and reduction transforms    *)
(* ------------------------------------------------------------------ *)

(* Random kernels with one fixed-trip inner loop (unroll fodder) and an
   indirect array accumulation (reduction-annotation fodder). *)
let transform_program_gen =
  let open QCheck.Gen in
  let rec fexpr leaves depth =
    if depth = 0 then oneofl leaves
    else
      frequency
        [
          (2, oneofl leaves);
          ( 3,
            let* x = fexpr leaves (depth - 1)
            and* y = fexpr leaves (depth - 1)
            and* op = oneofl [ "+"; "-"; "*" ] in
            return (Printf.sprintf "(%s %s %s)" x op y) );
          ( 1,
            let* x = fexpr leaves (depth - 1) in
            return (Printf.sprintf "sqrt(fabs(%s))" x) );
          ( 1,
            let* x = fexpr leaves (depth - 1) in
            return (Printf.sprintf "(%s / 1.25)" x) );
        ]
  in
  let inner_leaves = [ "a[i]"; "a[j]"; "t"; "0.25"; "1.5"; "(double)j" ] in
  let outer_leaves = [ "a[i]"; "t"; "0.5"; "(double)i" ] in
  let* bound = int_range 2 6
  and* e_inner = fexpr inner_leaves 2
  and* e_outer = fexpr outer_leaves 2 in
  return
    (Printf.sprintf
       {|
void work(double* a, int* b, double* out, int n) {
  for (int i = 0; i < n; i++) {
    double t = 0.0;
    for (int j = 0; j < %d; j++) {
      t += %s;
    }
    out[b[i]] += 0.125 * (%s);
    a[i] = 0.5 * t + 0.25;
  }
}

int main() {
  int n = 32;
  double a[n];
  int b[n];
  double out[n];
  for (int s = 0; s < n; s++) {
    a[s] = rand01();
    b[s] = (s * 5) %% 8;
    out[s] = 0.0;
  }
  work(a, b, out, n);
  double acc = 0.0;
  for (int s = 0; s < n; s++) {
    acc += out[s] + a[s];
  }
  print_float(acc);
  return 0;
}
|}
       bound e_inner e_outer)

let transform_arb = QCheck.make ~print:Fun.id transform_program_gen

(* What "observationally equivalent" means here: identical interpreter
   output and an identical data in/out set for the kernel — per-argument
   bytes moved and call count.  The kernel-cycle estimate is excluded:
   unrolling removes loop bookkeeping, so its cycles legitimately
   change. *)
let observables p ~kernel =
  let dio = Analysis.Data_inout.analyze p ~kernel in
  ( (Minic_interp.Eval.run p).output,
    (dio.Analysis.Data_inout.kernel, dio.calls, dio.args, dio.total_in,
     dio.total_out) )

let unroll_equivalence_prop =
  QCheck.Test.make ~count:25
    ~name:"unroll: transformed = original (output + data in/out)"
    transform_arb (fun src ->
      let p = parse src in
      let before = observables p ~kernel:"work" in
      let p', n = Unroll.unroll_fixed_inner_loops p ~kernel:"work" in
      if n < 1 then QCheck.Test.fail_report "fixed inner loop not unrolled";
      Minic.Typecheck.check_program p';
      observables p' ~kernel:"work" = before)

let reduction_equivalence_prop =
  QCheck.Test.make ~count:25
    ~name:"reduction: annotated = original (output + data in/out)"
    transform_arb (fun src ->
      let p = parse src in
      let before = observables p ~kernel:"work" in
      let p', _ = Reduction.remove_array_dependencies p ~kernel:"work" in
      Minic.Typecheck.check_program p';
      observables p' ~kernel:"work" = before)

(* The same obligation on the five paper benchmarks' extracted kernels. *)
let check_bench_equivalence (b : Benchmarks.Bench_app.t) () =
  let p = Benchmarks.Bench_app.program b ~n:b.profile_n in
  let ex, kernel, _ = Psa.Std_flow.prepare_kernel p in
  let before = observables ex ~kernel in
  let unrolled, _ = Unroll.unroll_fixed_inner_loops ex ~kernel in
  Alcotest.(check bool)
    "unrolled kernel observationally equivalent" true
    (observables unrolled ~kernel = before);
  let annotated, _ = Reduction.remove_array_dependencies ex ~kernel in
  Alcotest.(check bool)
    "reduction-annotated kernel observationally equivalent" true
    (observables annotated ~kernel = before)

let equivalence_tests =
  [
    QCheck_alcotest.to_alcotest unroll_equivalence_prop;
    QCheck_alcotest.to_alcotest reduction_equivalence_prop;
  ]
  @ List.map
      (fun (b : Benchmarks.Bench_app.t) ->
        Alcotest.test_case b.id `Slow (check_bench_equivalence b))
      Benchmarks.Registry.all

let () =
  Alcotest.run "transforms"
    [
      ("extract", extract_tests);
      ("reduction", reduction_tests);
      ("single_precision", sp_tests);
      ("unroll", unroll_tests);
      ("omp", omp_tests);
      ("equivalence", equivalence_tests);
    ]
